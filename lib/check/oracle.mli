(** Differential oracle: run every backend on a case and check the
    agreement properties the repository's credibility rests on.

    Per case, with the explicit enumerator as ground truth:

    - {b completeness agreement}: [Bnb], [Smt], [Cascade Bnb] and
      [Cascade Smt] each decide (never [Unknown]) and reach the same
      decision as [Explicit] (both [Robust], or both some [Flip]);
    - {b witness validity}: every [Flip v] satisfies [Noise.in_range] and
      concretely misclassifies under [Noise.predict];
    - {b interval soundness}: [Interval] never returns a witness, and when
      it proves [Robust] the enumerator confirms it;
    - {b cascade lattice}: whenever [Interval] decides, [Cascade b]
      decides identically ([Interval ⊑ Cascade b]);
    - {b parallel determinism}: the backend verdict vector computed on a
      one-worker {!Util.Parallel} pool equals the multi-worker one
      (doubles the backend cost, so the {!Fuzz} driver samples it on a
      fixed fraction of cases; [?check_parallel] controls it here);
    - {b certificate validity}: {!Fannet.Backend.certified_exists_flip}
      agrees with the enumerator, returns a certificate for every decided
      verdict, and the certificate passes the independent [lib/cert]
      checker ({!Fannet.Backend.check_certified}) — also sampled by the
      driver ([?check_certificate] controls it here);
    - {b portfolio agreement}: {!Fannet.Portfolio.exists_flip} (width 3,
      diversified seeds, clause sharing on) reaches the enumerator's
      decision, reports a winning seed for every decided verdict, and any
      witness is valid — sampled by the driver ([?check_portfolio]
      controls it here; it spawns domains per query);
    - {b counting agreement}: the exact counter
      ({!Fannet.Robustness.probability}) reproduces the brute-force flip
      count, is zero exactly when the enumerator proves the range robust,
      carries a [fannet-count-cert/1] certificate that passes the
      independent checker, answers byte-identically (certificate
      included) at [jobs] 1 and 4, and the tight-ε approximate counter
      short-circuits to the same exact count — sampled by the driver
      ([?check_count] controls it here; it enumerates the noise space).

    The backend runner is injectable ([?run]) so tests can mutate a
    backend and assert the oracle catches the discrepancy (mutation
    testing of the oracle itself). Exceptions escaping a backend are
    reported as failures, not propagated. *)

type runner =
  Fannet.Backend.t ->
  Nn.Qnet.t ->
  Fannet.Noise.spec ->
  input:int array ->
  label:int ->
  Fannet.Backend.verdict

type failure = {
  property : string;  (** e.g. ["complete-agreement"], ["witness-valid"] *)
  backend : string;   (** {!Fannet.Backend.to_string} of the culprit *)
  detail : string;
}

type result = {
  failures : failure list;  (** empty iff every property held *)
  ground_truth : Fannet.Backend.verdict;
      (** the explicit enumerator's verdict ([Unknown] only if it failed,
          which is itself reported as a failure) *)
}

val failure_to_string : failure -> string

val backends_under_test : Fannet.Backend.t list
(** [Explicit] (ground truth) followed by the complete backends and
    [Interval], as run by {!check_case}. *)

val check_case :
  ?run:runner ->
  ?check_parallel:bool ->
  ?check_certificate:bool ->
  ?check_portfolio:bool ->
  ?check_count:bool ->
  Case.t ->
  result
(** [run] defaults to {!Fannet.Backend.exists_flip}; [check_parallel]
    (default [true]) re-runs all backends on a 4-worker pool and compares
    verdict vectors; [check_certificate] (default [true]) runs the
    certified SMT path and validates its proof/model certificate;
    [check_portfolio] (default [true]) races the diversified portfolio
    against the enumerator's decision; [check_count] (default [true])
    checks the exact and approximate model counters against brute-force
    enumeration. *)
