(** Random SMV ASTs for parser/printer roundtrip property tests.

    Generates programs and expressions over {!Util.Rng} that exercise the
    whole {!Smv.Ast} surface while staying inside the fragment whose
    printed text parses back {b structurally equal}:

    - [Neg] is never applied directly to an integer literal: the printed
      form [(- 3)] is indistinguishable from the literal [-3], which the
      parser folds to [Int (-3)];
    - [Sym] is used only for [TRUE]/[FALSE] and symbols of declared enum
      domains (the parser resolves those back to [Sym]);
    - variable names avoid keywords and enum symbols;
    - [Set] appears only as the whole right-hand side of init/next
      equations, matching the {!Smv.Ast} convention.

    Generated programs are not necessarily well-typed for the explicit
    engine — roundtripping is purely syntactic — but they always pass the
    printer and parser. *)

val expr : Util.Rng.t -> Smv.Ast.expr
(** A random expression of bounded depth over variables [a], [b], [c] and
    the booleans, with arithmetic, comparisons, boolean connectives,
    [case] and negative literals. *)

val program : Util.Rng.t -> Smv.Ast.program
(** A random program: 1-3 ranged state variables, optionally an enum
    state variable and a ranged input variable, 0-2 defines, init/next
    equations (expressions or nondeterministic sets), and 1-2 named
    invarspecs. *)
