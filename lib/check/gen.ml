module R = Util.Rng
module N = Fannet.Noise

let default_max_explicit = 1_000

(* Depth is biased toward the classic two-layer shape (the paper's
   architecture) with a tail of 3- and 4-layer networks; each hidden
   layer is ReLU three times out of four and Sign otherwise, and one
   case in five is a fully binarized network (all-Sign hidden layers,
   weights in {-1, 1}) so the sign-CNF and symbolic-bound paths see
   their intended inputs, not just mixed nets. *)
let network rng =
  let n_in = R.int_in rng 1 3 in
  let n_out = R.int_in rng 2 3 in
  let depth =
    let r = R.int rng 10 in
    if r < 6 then 2 else if r < 9 then 3 else 4
  in
  let binarized = R.int rng 5 = 0 in
  (* Deeper networks get narrower layers and smaller weights: the
     bit-blasted backend's cost grows with the magnitude of intermediate
     values, which compounds per layer. *)
  let max_hidden = if depth = 2 then 4 else 3 in
  let max_w = if depth = 2 then 8 else 3 in
  let hidden_dims = Array.init (depth - 1) (fun _ -> R.int_in rng 1 max_hidden) in
  let weight () =
    if binarized then if R.bool rng then 1 else -1 else R.int_in rng (-max_w) max_w
  in
  let matrix rows cols =
    Array.init rows (fun _ -> Array.init cols (fun _ -> weight ()))
  in
  let hidden_act () =
    if binarized then Nn.Qnet.Sign
    else if R.int rng 4 = 0 then Nn.Qnet.Sign
    else Nn.Qnet.Relu
  in
  let dims = Array.concat [ [| n_in |]; hidden_dims; [| n_out |] ] in
  Nn.Qnet.create
    (Array.init depth (fun li ->
         let rows = dims.(li + 1) and cols = dims.(li) in
         let last = li = depth - 1 in
         {
           Nn.Qnet.weights = matrix rows cols;
           bias =
             Array.init rows (fun _ ->
                 if last then R.int_in rng (-10) 10
                 else if depth = 2 then R.int_in rng (-30) 30
                 else R.int_in rng (-15) 15);
           act = (if last then Nn.Qnet.Identity else hidden_act ());
         }))

let input rng ~n = Array.init n (fun _ -> R.int_in rng 1 60)

let spec rng ~n_inputs ~max_explicit =
  if max_explicit < 1 then invalid_arg "Gen.spec: max_explicit must be >= 1";
  let kind = if R.int rng 10 < 7 then N.Relative else N.Absolute in
  let initial =
    {
      N.delta_lo = -R.int_in rng 0 4;
      delta_hi = R.int_in rng 0 4;
      bias_noise = R.bool rng;
      kind;
    }
  in
  (* Narrow until the explicit enumeration fits the budget. Terminates: each
     step strictly shrinks the range or drops the bias node, and the
     single-point range {0} has size 1. *)
  let rec fit s =
    if N.spec_size s ~n_inputs <= max_explicit then s
    else if s.N.bias_noise then fit { s with N.bias_noise = false }
    else if s.N.delta_hi > -s.N.delta_lo then fit { s with N.delta_hi = s.N.delta_hi - 1 }
    else if s.N.delta_lo < 0 then fit { s with N.delta_lo = s.N.delta_lo + 1 }
    else fit { s with N.delta_hi = s.N.delta_hi - 1 }
  in
  fit initial

let case ~seed ~id ~max_explicit =
  let rng = R.create seed in
  let net = network rng in
  let input = input rng ~n:(Nn.Qnet.in_dim net) in
  let spec = spec rng ~n_inputs:(Nn.Qnet.in_dim net) ~max_explicit in
  { Case.id; seed; net; input; label = Nn.Qnet.predict net input; spec }

let corpus ~seed ~cases ~max_explicit =
  let master = R.create seed in
  List.init cases (fun id ->
      let seed = Int64.to_int (R.int64 master) land max_int in
      case ~seed ~id ~max_explicit)
