module R = Util.Rng
module N = Fannet.Noise

let default_max_explicit = 1_000

let network rng =
  let n_in = R.int_in rng 1 3 in
  let n_hidden = R.int_in rng 1 4 in
  let n_out = R.int_in rng 2 3 in
  let weight () = R.int_in rng (-8) 8 in
  let matrix rows cols =
    Array.init rows (fun _ -> Array.init cols (fun _ -> weight ()))
  in
  Nn.Qnet.create
    [|
      {
        Nn.Qnet.weights = matrix n_hidden n_in;
        bias = Array.init n_hidden (fun _ -> R.int_in rng (-30) 30);
        relu = true;
      };
      {
        Nn.Qnet.weights = matrix n_out n_hidden;
        bias = Array.init n_out (fun _ -> R.int_in rng (-10) 10);
        relu = false;
      };
    |]

let input rng ~n = Array.init n (fun _ -> R.int_in rng 1 60)

let spec rng ~n_inputs ~max_explicit =
  if max_explicit < 1 then invalid_arg "Gen.spec: max_explicit must be >= 1";
  let kind = if R.int rng 10 < 7 then N.Relative else N.Absolute in
  let initial =
    {
      N.delta_lo = -R.int_in rng 0 4;
      delta_hi = R.int_in rng 0 4;
      bias_noise = R.bool rng;
      kind;
    }
  in
  (* Narrow until the explicit enumeration fits the budget. Terminates: each
     step strictly shrinks the range or drops the bias node, and the
     single-point range {0} has size 1. *)
  let rec fit s =
    if N.spec_size s ~n_inputs <= max_explicit then s
    else if s.N.bias_noise then fit { s with N.bias_noise = false }
    else if s.N.delta_hi > -s.N.delta_lo then fit { s with N.delta_hi = s.N.delta_hi - 1 }
    else if s.N.delta_lo < 0 then fit { s with N.delta_lo = s.N.delta_lo + 1 }
    else fit { s with N.delta_hi = s.N.delta_hi - 1 }
  in
  fit initial

let case ~seed ~id ~max_explicit =
  let rng = R.create seed in
  let net = network rng in
  let input = input rng ~n:(Nn.Qnet.in_dim net) in
  let spec = spec rng ~n_inputs:(Nn.Qnet.in_dim net) ~max_explicit in
  { Case.id; seed; net; input; label = Nn.Qnet.predict net input; spec }

let corpus ~seed ~cases ~max_explicit =
  let master = R.create seed in
  List.init cases (fun id ->
      let seed = Int64.to_int (R.int64 master) land max_int in
      case ~seed ~id ~max_explicit)
