module J = Util.Json
module N = Fannet.Noise

type t = {
  id : int;
  seed : int;
  net : Nn.Qnet.t;
  input : int array;
  label : int;
  spec : N.spec;
}

let equal a b =
  a.id = b.id && a.seed = b.seed
  && Nn.Qnet.equal a.net b.net
  && a.input = b.input && a.label = b.label && a.spec = b.spec

let size c =
  let param_mass =
    Array.fold_left
      (fun acc (l : Nn.Qnet.qlayer) ->
        let rows =
          Array.fold_left
            (fun acc row -> Array.fold_left (fun acc w -> acc + abs w) acc row)
            0 l.Nn.Qnet.weights
        in
        acc + rows + Array.fold_left (fun acc b -> acc + abs b) 0 l.Nn.Qnet.bias)
      0 c.net.Nn.Qnet.layers
  in
  let input_mass = Array.fold_left (fun acc x -> acc + abs x) 0 c.input in
  (* Node counts keep structural drops size-decreasing even when the
     removed weights happen to be all-zero; the per-layer activation cost
     makes linearizing a ReLU/Sign layer a size-decreasing shrink. *)
  let nodes =
    Array.fold_left
      (fun acc (l : Nn.Qnet.qlayer) -> acc + Array.length l.Nn.Qnet.bias)
      (Array.length c.input) c.net.Nn.Qnet.layers
  in
  let act_mass =
    Array.fold_left
      (fun acc (l : Nn.Qnet.qlayer) ->
        acc + match l.Nn.Qnet.act with Nn.Qnet.Identity -> 0 | _ -> 1)
      0 c.net.Nn.Qnet.layers
  in
  (c.spec.N.delta_hi - c.spec.N.delta_lo)
  + (if c.spec.N.bias_noise then 1 else 0)
  + param_mass + input_mass + nodes + act_mass

let to_string c =
  let dims =
    String.concat "-" (List.map string_of_int (Nn.Qnet.dims c.net))
  in
  let acts =
    String.concat ","
      (Array.to_list
         (Array.map
            (fun (l : Nn.Qnet.qlayer) -> Nn.Qnet.act_to_string l.Nn.Qnet.act)
            c.net.Nn.Qnet.layers))
  in
  Printf.sprintf
    "case %d (seed %d): net %s [%s], input [%s], label %d, noise [%d,%d]%s %s"
    c.id c.seed dims acts
    (String.concat ";" (Array.to_list (Array.map string_of_int c.input)))
    c.label c.spec.N.delta_lo c.spec.N.delta_hi
    (if c.spec.N.bias_noise then "+bias" else "")
    (match c.spec.N.kind with N.Relative -> "relative" | N.Absolute -> "absolute")

(* ---------- JSON encoding ---------- *)

let int_array_to_json a = J.List (Array.to_list (Array.map (fun v -> J.Int v) a))

let layer_to_json (l : Nn.Qnet.qlayer) =
  J.Obj
    [
      ( "weights",
        J.List (Array.to_list (Array.map int_array_to_json l.Nn.Qnet.weights)) );
      ("bias", int_array_to_json l.Nn.Qnet.bias);
      ("act", J.String (Nn.Qnet.act_to_string l.Nn.Qnet.act));
      (* Legacy mirror so corpora written here stay loadable by older
         readers that only know the relu boolean. *)
      ("relu", J.Bool (l.Nn.Qnet.act = Nn.Qnet.Relu));
    ]

let spec_to_json (s : N.spec) =
  J.Obj
    [
      ("delta_lo", J.Int s.N.delta_lo);
      ("delta_hi", J.Int s.N.delta_hi);
      ("bias_noise", J.Bool s.N.bias_noise);
      ( "kind",
        J.String (match s.N.kind with N.Relative -> "relative" | N.Absolute -> "absolute") );
    ]

let to_json c =
  J.Obj
    [
      ("id", J.Int c.id);
      ("seed", J.Int c.seed);
      ( "net",
        J.Obj
          [
            ( "layers",
              J.List (Array.to_list (Array.map layer_to_json c.net.Nn.Qnet.layers)) );
          ] );
      ("input", int_array_to_json c.input);
      ("label", J.Int c.label);
      ("spec", spec_to_json c.spec);
    ]

(* ---------- JSON decoding ---------- *)

let ( let* ) = Result.bind

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int = function
  | J.Int v -> Ok v
  | _ -> Error "expected an integer"

let as_bool = function
  | J.Bool b -> Ok b
  | _ -> Error "expected a boolean"

let as_list = function
  | J.List l -> Ok l
  | _ -> Error "expected an array"

let int_field name json =
  let* v = field name json in
  as_int v

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let int_array_of_json json =
  let* l = as_list json in
  let* ints = map_result as_int l in
  Ok (Array.of_list ints)

let layer_of_json json =
  let* weights_json = field "weights" json in
  let* rows = as_list weights_json in
  let* weights = map_result int_array_of_json rows in
  let* bias_json = field "bias" json in
  let* bias = int_array_of_json bias_json in
  let* act =
    match J.member "act" json with
    | Some (J.String s) -> (
        match Nn.Qnet.act_of_string s with
        | Some act -> Ok act
        | None -> Error (Printf.sprintf "unknown activation %S" s))
    | Some _ -> Error "expected a string activation"
    | None ->
        (* Older corpora carry only the relu boolean. *)
        let* relu_json = field "relu" json in
        let* relu = as_bool relu_json in
        Ok (if relu then Nn.Qnet.Relu else Nn.Qnet.Identity)
  in
  Ok { Nn.Qnet.weights = Array.of_list weights; bias; act }

let spec_of_json json =
  let* delta_lo = int_field "delta_lo" json in
  let* delta_hi = int_field "delta_hi" json in
  let* bias_json = field "bias_noise" json in
  let* bias_noise = as_bool bias_json in
  let* kind_json = field "kind" json in
  let* kind =
    match kind_json with
    | J.String "relative" -> Ok N.Relative
    | J.String "absolute" -> Ok N.Absolute
    | J.String s -> Error (Printf.sprintf "unknown noise kind %S" s)
    | _ -> Error "expected a string noise kind"
  in
  if delta_lo > 0 || delta_hi < 0 then Error "noise range must contain 0"
  else Ok { N.delta_lo; delta_hi; bias_noise; kind }

let of_json json =
  let* id = int_field "id" json in
  let* seed = int_field "seed" json in
  let* net_json = field "net" json in
  let* layers_json = field "layers" net_json in
  let* layer_list = as_list layers_json in
  let* layers = map_result layer_of_json layer_list in
  let* net =
    match Nn.Qnet.create (Array.of_list layers) with
    | net -> Ok net
    | exception Invalid_argument msg -> Error msg
  in
  let* input_json = field "input" json in
  let* input = int_array_of_json input_json in
  let* label = int_field "label" json in
  let* spec_json = field "spec" json in
  let* spec = spec_of_json spec_json in
  if Array.length input <> Nn.Qnet.in_dim net then
    Error "input length does not match the network"
  else if label < 0 || label >= Nn.Qnet.out_dim net then
    Error "label out of range"
  else Ok { id; seed; net; input; label; spec }

(* ---------- corpus ---------- *)

let format_tag = "fannet-fuzz-corpus"

let corpus_version = 1

let corpus_to_json ~seed cases =
  J.Obj
    [
      ("format", J.String format_tag);
      ("version", J.Int corpus_version);
      ("seed", J.Int seed);
      ("cases", J.List (List.map to_json cases));
    ]

let corpus_of_json json =
  let* fmt = field "format" json in
  let* () =
    match fmt with
    | J.String s when s = format_tag -> Ok ()
    | _ -> Error "not a fannet fuzz corpus"
  in
  let* version = int_field "version" json in
  let* () =
    if version = corpus_version then Ok ()
    else Error (Printf.sprintf "unsupported corpus version %d" version)
  in
  let* seed = int_field "seed" json in
  let* cases_json = field "cases" json in
  let* case_list = as_list cases_json in
  let* cases = map_result of_json case_list in
  Ok (seed, cases)

let save_corpus path ~seed cases = J.write_file path (corpus_to_json ~seed cases)

let load_corpus path =
  let* json = J.parse_file path in
  corpus_of_json json

(* ---------- lenient loading ---------- *)

type lenient = {
  corpus_seed : int;
  good : t list;
  bad : (int * string) list;
}

let load_corpus_lenient path =
  let prefix msg = Printf.sprintf "%s: %s" path msg in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
      let contents =
        (* Fault injection: hand the parser a torn file, as if the writer
           was killed mid-write. The parse error below must name the file
           and the byte offset where the text ends. *)
        if Resil.Faultpoint.hit "corpus.corrupt" then
          String.sub contents 0 (String.length contents / 2)
        else contents
      in
      let* json =
        match J.of_string (String.trim contents) with
        | Ok json -> Ok json
        | Error msg -> Error (prefix msg)
      in
      (* Envelope errors are unrecoverable (there is no case list to be
         lenient about); per-case errors are collected with their index. *)
      let* () =
        match field "format" json with
        | Ok (J.String s) when s = format_tag -> Ok ()
        | Ok _ | Error _ -> Error (prefix "not a fannet fuzz corpus")
      in
      let* () =
        match int_field "version" json with
        | Ok v when v = corpus_version -> Ok ()
        | Ok v -> Error (prefix (Printf.sprintf "unsupported corpus version %d" v))
        | Error e -> Error (prefix e)
      in
      let* corpus_seed = Result.map_error prefix (int_field "seed" json) in
      let* case_list =
        match Result.bind (field "cases" json) as_list with
        | Ok l -> Ok l
        | Error e -> Error (prefix e)
      in
      let good, bad =
        List.fold_left
          (fun (good, bad) (i, case_json) ->
            match of_json case_json with
            | Ok c -> (c :: good, bad)
            | Error e ->
                (good, (i, prefix (Printf.sprintf "case %d: %s" i e)) :: bad))
          ([], [])
          (List.mapi (fun i c -> (i, c)) case_list)
      in
      Ok { corpus_seed; good = List.rev good; bad = List.rev bad }
