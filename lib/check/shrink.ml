module N = Fannet.Noise

let drop_index a i = Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let drop_col m i = Array.map (fun row -> drop_index row i) m

(* Rebuild a case around a transformed network/input, recomputing the
   label so the shrunken case is still a valid P2 query. *)
let rebuild (c : Case.t) ~net ~input ~spec =
  { c with Case.net; input; spec; label = Nn.Qnet.predict net input }

let with_spec (c : Case.t) spec = rebuild c ~net:c.Case.net ~input:c.Case.input ~spec

let layers (c : Case.t) = c.Case.net.Nn.Qnet.layers

let make_net l1 l2 = Nn.Qnet.create [| l1; l2 |]

let spec_candidates (c : Case.t) =
  let s = c.Case.spec in
  List.concat
    [
      (if s.N.delta_hi > 0 then [ with_spec c { s with N.delta_hi = s.N.delta_hi - 1 } ] else []);
      (if s.N.delta_lo < 0 then [ with_spec c { s with N.delta_lo = s.N.delta_lo + 1 } ] else []);
      (if s.N.bias_noise then [ with_spec c { s with N.bias_noise = false } ] else []);
    ]

let structural_candidates (c : Case.t) =
  let l1 = (layers c).(0) and l2 = (layers c).(1) in
  let n_in = Nn.Qnet.in_dim c.Case.net in
  let n_hidden = Array.length l1.Nn.Qnet.bias in
  let n_out = Array.length l2.Nn.Qnet.bias in
  let drop_hidden k =
    make_net
      {
        l1 with
        Nn.Qnet.weights = drop_index l1.Nn.Qnet.weights k;
        bias = drop_index l1.Nn.Qnet.bias k;
      }
      { l2 with Nn.Qnet.weights = drop_col l2.Nn.Qnet.weights k }
  in
  let drop_input i =
    make_net { l1 with Nn.Qnet.weights = drop_col l1.Nn.Qnet.weights i } l2
  in
  let drop_output j =
    make_net l1
      {
        l2 with
        Nn.Qnet.weights = drop_index l2.Nn.Qnet.weights j;
        bias = drop_index l2.Nn.Qnet.bias j;
      }
  in
  List.concat
    [
      (if n_hidden > 1 then
         List.init n_hidden (fun k ->
             rebuild c ~net:(drop_hidden k) ~input:c.Case.input ~spec:c.Case.spec)
       else []);
      (if n_in > 1 then
         List.init n_in (fun i ->
             rebuild c ~net:(drop_input i) ~input:(drop_index c.Case.input i)
               ~spec:c.Case.spec)
       else []);
      (if n_out > 2 then
         List.init n_out (fun j ->
             rebuild c ~net:(drop_output j) ~input:c.Case.input ~spec:c.Case.spec)
       else []);
    ]

(* Element-wise moves toward zero over weights, biases and the input. *)
let value_candidates (c : Case.t) =
  let l1 = (layers c).(0) and l2 = (layers c).(1) in
  let replace_layer idx layer =
    let ls = Array.copy (layers c) in
    ls.(idx) <- layer;
    Nn.Qnet.create ls
  in
  let set_weight idx (l : Nn.Qnet.qlayer) r k v =
    let weights = Array.map Array.copy l.Nn.Qnet.weights in
    weights.(r).(k) <- v;
    replace_layer idx { l with Nn.Qnet.weights }
  in
  let set_bias idx (l : Nn.Qnet.qlayer) r v =
    let bias = Array.copy l.Nn.Qnet.bias in
    bias.(r) <- v;
    replace_layer idx { l with Nn.Qnet.bias }
  in
  let acc = ref [] in
  let push net = acc := rebuild c ~net ~input:c.Case.input ~spec:c.Case.spec :: !acc in
  let moves w = if w = 0 then [] else if abs w = 1 then [ 0 ] else [ 0; w / 2 ] in
  List.iteri
    (fun idx (l : Nn.Qnet.qlayer) ->
      Array.iteri
        (fun r row ->
          Array.iteri (fun k w -> List.iter (fun v -> push (set_weight idx l r k v)) (moves w)) row)
        l.Nn.Qnet.weights;
      Array.iteri (fun r b -> List.iter (fun v -> push (set_bias idx l r v)) (moves b)) l.Nn.Qnet.bias)
    [ l1; l2 ];
  let input_moves =
    List.concat
      (List.init (Array.length c.Case.input) (fun i ->
           List.map
             (fun v ->
               let input = Array.copy c.Case.input in
               input.(i) <- v;
               rebuild c ~net:c.Case.net ~input ~spec:c.Case.spec)
             (moves c.Case.input.(i))))
  in
  List.rev_append !acc input_moves

let candidates c =
  List.to_seq
    (List.concat [ spec_candidates c; structural_candidates c; value_candidates c ])

let shrink ~fails c =
  (* Greedy descent: Case.size strictly decreases on every accepted step,
     so the loop terminates without an explicit bound. *)
  let rec loop c =
    match Seq.find fails (candidates c) with
    | Some smaller -> loop smaller
    | None -> c
  in
  loop c
