module N = Fannet.Noise

let drop_index a i = Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let drop_col m i = Array.map (fun row -> drop_index row i) m

(* Rebuild a case around a transformed network/input, recomputing the
   label so the shrunken case is still a valid P2 query. *)
let rebuild (c : Case.t) ~net ~input ~spec =
  { c with Case.net; input; spec; label = Nn.Qnet.predict net input }

let with_spec (c : Case.t) spec = rebuild c ~net:c.Case.net ~input:c.Case.input ~spec

let layers (c : Case.t) = c.Case.net.Nn.Qnet.layers

let with_layers (c : Case.t) ls =
  rebuild c ~net:(Nn.Qnet.create ls) ~input:c.Case.input ~spec:c.Case.spec

let spec_candidates (c : Case.t) =
  let s = c.Case.spec in
  List.concat
    [
      (if s.N.delta_hi > 0 then [ with_spec c { s with N.delta_hi = s.N.delta_hi - 1 } ] else []);
      (if s.N.delta_lo < 0 then [ with_spec c { s with N.delta_lo = s.N.delta_lo + 1 } ] else []);
      (if s.N.bias_noise then [ with_spec c { s with N.bias_noise = false } ] else []);
    ]

let structural_candidates (c : Case.t) =
  let ls = layers c in
  let n_layers = Array.length ls in
  let n_in = Nn.Qnet.in_dim c.Case.net in
  let n_out = Nn.Qnet.out_dim c.Case.net in
  (* Dropping hidden neuron [k] of layer [li] removes its row and bias in
     layer [li] and the matching column of layer [li+1]. *)
  let drop_hidden li k =
    let ls = Array.copy ls in
    ls.(li) <-
      {
        ls.(li) with
        Nn.Qnet.weights = drop_index ls.(li).Nn.Qnet.weights k;
        bias = drop_index ls.(li).Nn.Qnet.bias k;
      };
    ls.(li + 1) <-
      { ls.(li + 1) with Nn.Qnet.weights = drop_col ls.(li + 1).Nn.Qnet.weights k };
    with_layers c ls
  in
  let drop_input i =
    let ls = Array.copy ls in
    ls.(0) <- { ls.(0) with Nn.Qnet.weights = drop_col ls.(0).Nn.Qnet.weights i };
    rebuild c
      ~net:(Nn.Qnet.create ls)
      ~input:(drop_index c.Case.input i)
      ~spec:c.Case.spec
  in
  let drop_output j =
    let last = n_layers - 1 in
    let ls = Array.copy ls in
    ls.(last) <-
      {
        ls.(last) with
        Nn.Qnet.weights = drop_index ls.(last).Nn.Qnet.weights j;
        bias = drop_index ls.(last).Nn.Qnet.bias j;
      };
    with_layers c ls
  in
  (* Collapsing hidden layer [li] into [li+1] by matrix product: not a
     semantics-preserving move (activations are nonlinear), but shrinking
     only needs the failure to keep failing. The merged weights can have
     larger magnitudes than the originals, so the caller's size guard
     (candidates must strictly decrease {!Case.size}) is what makes this
     move safe for termination — the guard is applied in {!candidates}. *)
  let collapse li =
    let a = ls.(li) and b = ls.(li + 1) in
    let rows = Array.length b.Nn.Qnet.weights
    and mid = Array.length a.Nn.Qnet.weights
    and cols = Array.length a.Nn.Qnet.weights.(0) in
    let weights =
      Array.init rows (fun r ->
          Array.init cols (fun j ->
              let acc = ref 0 in
              for k = 0 to mid - 1 do
                acc := !acc + (b.Nn.Qnet.weights.(r).(k) * a.Nn.Qnet.weights.(k).(j))
              done;
              !acc))
    in
    let bias =
      Array.init rows (fun r ->
          let acc = ref b.Nn.Qnet.bias.(r) in
          for k = 0 to mid - 1 do
            acc := !acc + (b.Nn.Qnet.weights.(r).(k) * a.Nn.Qnet.bias.(k))
          done;
          !acc)
    in
    let merged = { Nn.Qnet.weights; bias; act = b.Nn.Qnet.act } in
    let ls' =
      Array.init (n_layers - 1) (fun j ->
          if j < li then ls.(j) else if j = li then merged else ls.(j + 1))
    in
    with_layers c ls'
  in
  (* Linearizing a nonlinear hidden layer: strictly decreases size via the
     per-layer activation cost in {!Case.size}. *)
  let linearize li =
    let ls = Array.copy ls in
    ls.(li) <- { ls.(li) with Nn.Qnet.act = Nn.Qnet.Identity };
    with_layers c ls
  in
  List.concat
    [
      List.concat
        (List.init (n_layers - 1) (fun li ->
             let n_hidden = Array.length ls.(li).Nn.Qnet.bias in
             if n_hidden > 1 then List.init n_hidden (drop_hidden li) else []));
      (if n_in > 1 then List.init n_in drop_input else []);
      (if n_out > 2 then List.init n_out drop_output else []);
      (if n_layers > 2 then List.init (n_layers - 2) collapse else []);
      List.filter_map
        (fun li ->
          if ls.(li).Nn.Qnet.act <> Nn.Qnet.Identity then Some (linearize li)
          else None)
        (List.init (n_layers - 1) Fun.id);
    ]

(* Element-wise moves toward zero over weights, biases and the input. *)
let value_candidates (c : Case.t) =
  let replace_layer idx layer =
    let ls = Array.copy (layers c) in
    ls.(idx) <- layer;
    Nn.Qnet.create ls
  in
  let set_weight idx (l : Nn.Qnet.qlayer) r k v =
    let weights = Array.map Array.copy l.Nn.Qnet.weights in
    weights.(r).(k) <- v;
    replace_layer idx { l with Nn.Qnet.weights }
  in
  let set_bias idx (l : Nn.Qnet.qlayer) r v =
    let bias = Array.copy l.Nn.Qnet.bias in
    bias.(r) <- v;
    replace_layer idx { l with Nn.Qnet.bias }
  in
  let acc = ref [] in
  let push net = acc := rebuild c ~net ~input:c.Case.input ~spec:c.Case.spec :: !acc in
  let moves w = if w = 0 then [] else if abs w = 1 then [ 0 ] else [ 0; w / 2 ] in
  Array.iteri
    (fun idx (l : Nn.Qnet.qlayer) ->
      Array.iteri
        (fun r row ->
          Array.iteri (fun k w -> List.iter (fun v -> push (set_weight idx l r k v)) (moves w)) row)
        l.Nn.Qnet.weights;
      Array.iteri (fun r b -> List.iter (fun v -> push (set_bias idx l r v)) (moves b)) l.Nn.Qnet.bias)
    (layers c);
  let input_moves =
    List.concat
      (List.init (Array.length c.Case.input) (fun i ->
           List.map
             (fun v ->
               let input = Array.copy c.Case.input in
               input.(i) <- v;
               rebuild c ~net:c.Case.net ~input ~spec:c.Case.spec)
             (moves c.Case.input.(i))))
  in
  List.rev_append !acc input_moves

let candidates c =
  let size = Case.size c in
  Seq.filter
    (fun c' -> Case.size c' < size)
    (List.to_seq
       (List.concat [ spec_candidates c; structural_candidates c; value_candidates c ]))

let shrink ~fails c =
  (* Greedy descent: the size guard in {!candidates} means Case.size
     strictly decreases on every accepted step, so the loop terminates
     without an explicit bound. *)
  let rec loop c =
    match Seq.find fails (candidates c) with
    | Some smaller -> loop smaller
    | None -> c
  in
  loop c
