module R = Util.Rng
module A = Smv.Ast

let int_var_names = [| "a"; "b"; "c" |]

let enum_var = "mode"

let enum_syms = [ "s_one"; "s_two" ]

let literal rng = A.Int (R.int_in rng (-5) 5)

let cmp_ops = [| A.Lt; A.Le; A.Eq; A.Ge; A.Gt; A.Ne |]

(* [vars] are the names usable as [Var]; [syms] the Sym atoms in scope. *)
let rec expr_at rng ~vars ~syms depth =
  let atom () =
    match R.int rng 3 with
    | 0 -> literal rng
    | 1 -> A.Var (R.pick rng vars)
    | _ -> A.Sym (R.pick rng syms)
  in
  if depth = 0 then atom ()
  else
    let sub () = expr_at rng ~vars ~syms (depth - 1) in
    match R.int rng 10 with
    | 0 -> atom ()
    | 1 -> A.Add (sub (), sub ())
    | 2 -> A.Sub (sub (), sub ())
    | 3 -> A.Mul (sub (), sub ())
    | 4 ->
        (* Never Neg over a literal: "(- 3)" parses as the literal -3. *)
        A.Neg (A.Var (R.pick rng vars))
    | 5 -> A.Cmp (R.pick rng cmp_ops, sub (), sub ())
    | 6 -> A.Not (sub ())
    | 7 -> A.And (sub (), sub ())
    | 8 -> A.Or (sub (), sub ())
    | _ ->
        let arms = R.int_in rng 1 2 in
        A.Case (List.init arms (fun _ -> (sub (), sub ())))

let default_syms = [| "TRUE"; "FALSE" |]

let expr rng =
  expr_at rng ~vars:int_var_names ~syms:default_syms (R.int_in rng 1 3)

let set_of_ints rng =
  A.Set (List.init (R.int_in rng 1 3) (fun _ -> literal rng))

let program rng =
  let n_vars = R.int_in rng 1 3 in
  let names = Array.sub int_var_names 0 n_vars in
  let with_enum = R.bool rng in
  let with_ivar = R.bool rng in
  let range rng =
    let lo = -R.int_in rng 0 3 in
    A.Range (lo, R.int_in rng 0 3)
  in
  let state_vars =
    Array.to_list (Array.map (fun n -> (n, range rng)) names)
    @ (if with_enum then [ (enum_var, A.Enum enum_syms) ] else [])
  in
  let input_vars = if with_ivar then [ ("inp", range rng) ] else [] in
  let syms =
    Array.append default_syms
      (if with_enum then Array.of_list enum_syms else [||])
  in
  let vars =
    Array.concat
      [ names; (if with_enum then [| enum_var |] else [||]);
        (if with_ivar then [| "inp" |] else [||]) ]
  in
  let gen_expr () = expr_at rng ~vars ~syms (R.int_in rng 1 3) in
  let n_defines = R.int_in rng 0 2 in
  let defines = List.init n_defines (fun i -> (Printf.sprintf "d%d" i, gen_expr ())) in
  let rhs () = if R.bool rng then set_of_ints rng else gen_expr () in
  let init = Array.to_list (Array.map (fun n -> (n, rhs ())) names) in
  let next =
    List.filter_map
      (fun n -> if R.bool rng then Some (n, rhs ()) else None)
      (Array.to_list names)
  in
  let n_specs = R.int_in rng 1 2 in
  let invarspecs =
    List.init n_specs (fun i -> (Printf.sprintf "p%d" i, gen_expr ()))
  in
  { A.state_vars; input_vars; defines; init; next; invarspecs }
