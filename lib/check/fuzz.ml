module B = Fannet.Backend

type case_failure = {
  case : Case.t;
  shrunk : Case.t;
  failures : Oracle.failure list;
  shrunk_failures : Oracle.failure list;
}

type report = {
  master_seed : int;
  cases_run : int;
  robust : int;
  flipped : int;
  case_failures : case_failure list;
}

let report_ok r = r.case_failures = []

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fuzz: %d cases (seed %d): %d robust, %d flipped, %d failing\n"
       r.cases_run r.master_seed r.robust r.flipped (List.length r.case_failures));
  List.iter
    (fun cf ->
      Buffer.add_string buf
        (Printf.sprintf "FAILURE on %s\n" (Case.to_string cf.case));
      List.iter
        (fun f -> Buffer.add_string buf ("  " ^ Oracle.failure_to_string f ^ "\n"))
        cf.failures;
      Buffer.add_string buf
        (Printf.sprintf "  shrunk to %s\n" (Case.to_string cf.shrunk));
      List.iter
        (fun f -> Buffer.add_string buf ("    " ^ Oracle.failure_to_string f ^ "\n"))
        cf.shrunk_failures;
      Buffer.add_string buf
        (Printf.sprintf
           "  replay: fannet fuzz --cases %d --seed %d (case %d, case seed %d)\n"
           r.cases_run r.master_seed cf.case.Case.id cf.case.Case.seed))
    r.case_failures;
  Buffer.contents buf

let run_cases ?run ?(log = fun _ -> ()) ~master_seed cases =
  let n = List.length cases in
  let robust = ref 0 and flipped = ref 0 in
  let case_failures = ref [] in
  List.iteri
    (fun i case ->
      if i > 0 && i mod 100 = 0 then log (Printf.sprintf "  ... %d/%d cases" i n);
      (* The parallel-determinism double-run, the certificate check, the
         portfolio race and the counting agreement are sampled: every
         8th / 4th / 4th / 8th case still exercises them while the smoke
         run stays in budget (offsets chosen so the expensive checks
         rarely land on the same case). *)
      let result =
        Oracle.check_case ?run ~check_parallel:(i mod 8 = 0)
          ~check_certificate:(i mod 4 = 0) ~check_portfolio:(i mod 4 = 2)
          ~check_count:(i mod 8 = 4) case
      in
      (match result.Oracle.ground_truth with
      | B.Robust -> incr robust
      | B.Flip _ -> incr flipped
      | B.Unknown _ -> ());
      if result.Oracle.failures <> [] then begin
        log (Printf.sprintf "  failure on case %d (seed %d); shrinking..."
               case.Case.id case.Case.seed);
        let fails c = (Oracle.check_case ?run c).Oracle.failures <> [] in
        let shrunk = Shrink.shrink ~fails case in
        let shrunk_failures = (Oracle.check_case ?run shrunk).Oracle.failures in
        case_failures :=
          {
            case;
            shrunk;
            failures = result.Oracle.failures;
            shrunk_failures;
          }
          :: !case_failures
      end)
    cases;
  {
    master_seed;
    cases_run = n;
    robust = !robust;
    flipped = !flipped;
    case_failures = List.rev !case_failures;
  }

let run ?run:runner ?log ?(max_explicit = Gen.default_max_explicit) ~cases ~seed () =
  run_cases ?run:runner ?log ~master_seed:seed
    (Gen.corpus ~seed ~cases ~max_explicit)
