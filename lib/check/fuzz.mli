(** Differential-fuzzing driver: generate (or replay) a case corpus, run
    the {!Oracle} on every case, and shrink any failure to a minimal
    reproducer.

    Exit discipline for CI: {!report_ok} is false as soon as one property
    failed on one case; {!report_to_string} prints each violated property,
    the shrunk failing case, and the two seeds (master and per-case) that
    reproduce it — re-running with the same [--cases]/[--seed] regenerates
    the identical corpus, and {!Gen.case} on the per-case seed rebuilds
    the single failing case. *)

type case_failure = {
  case : Case.t;           (** the case as generated *)
  shrunk : Case.t;         (** greedy-minimal case still failing *)
  failures : Oracle.failure list;  (** properties violated on [case] *)
  shrunk_failures : Oracle.failure list;  (** the same, on [shrunk] *)
}

type report = {
  master_seed : int;   (** seed the corpus was generated/recorded from *)
  cases_run : int;
  robust : int;        (** cases the enumerator proved robust *)
  flipped : int;       (** cases with at least one flipping vector *)
  case_failures : case_failure list;
}

val report_ok : report -> bool

val report_to_string : report -> string
(** Multi-line summary; on failure includes every violated property, the
    shrunk case and the seeds needed to replay it. *)

val run_cases :
  ?run:Oracle.runner ->
  ?log:(string -> unit) ->
  master_seed:int ->
  Case.t list ->
  report
(** Oracle + shrinking over an explicit case list (corpus replay). [log]
    receives one progress line per 100 cases and one line per failure. *)

val run :
  ?run:Oracle.runner ->
  ?log:(string -> unit) ->
  ?max_explicit:int ->
  cases:int ->
  seed:int ->
  unit ->
  report
(** Generate [cases] cases from [seed] ({!Gen.corpus}) and check them.
    Deterministic: equal arguments produce equal reports. *)
