(** Random-case generators for the differential fuzzer.

    All randomness flows through {!Util.Rng} (SplitMix64), so a corpus is
    a pure function of its master seed: the driver derives one recorded
    per-case seed per case and rebuilds the case from that seed alone.

    Networks respect every invariant the backends assume: 2-4 layers,
    ReLU or Sign hidden layers, identity output layer, consistent
    dimensions ({!Nn.Qnet.create} checks them). Noise ranges are sized so
    the number of vectors stays at or below [max_explicit], keeping the
    {!Fannet.Backend.Explicit} ground-truth enumeration tractable. *)

val default_max_explicit : int
(** 1_000 vectors. The explicit enumerator could take far more, but the
    bit-blasted [Smt] backend — which must answer every case too — is the
    binding constraint: its cost grows steeply with the range, and this
    budget keeps a 200-case run within the CI smoke window. *)

val network : Util.Rng.t -> Nn.Qnet.t
(** 1-3 inputs, 2-4 layers (biased toward 2), 2-3 identity outputs.
    Two-layer networks draw 1-4 hidden neurons, weights in [-8, 8] and
    hidden biases in [-30, 30]; deeper networks narrow to 1-3 neurons,
    weights in [-3, 3] and hidden biases in [-15, 15] (the bit-blasted
    backend's cost compounds with depth). Each hidden layer is ReLU with
    probability 3/4 and Sign otherwise; one network in five is fully
    binarized (all-Sign hidden layers, weights in [{-1, 1}]). *)

val input : Util.Rng.t -> n:int -> int array
(** Component values in [1, 60] (the quantized Leukemia inputs' scale). *)

val spec : Util.Rng.t -> n_inputs:int -> max_explicit:int -> Fannet.Noise.spec
(** Relative or absolute noise, [delta_lo] in [-4, 0], [delta_hi] in
    [0, 4], optional bias noise; the range is narrowed (and bias noise
    dropped) until [Noise.spec_size <= max_explicit]. *)

val case : seed:int -> id:int -> max_explicit:int -> Case.t
(** The whole case determined by [seed]: network, input, noise spec, and
    the network's noise-free prediction as the case label. *)

val corpus : seed:int -> cases:int -> max_explicit:int -> Case.t list
(** [cases] cases with ids [0 .. cases-1]; per-case seeds are drawn from a
    master stream seeded with [seed], so equal arguments yield a
    structurally identical corpus. *)
