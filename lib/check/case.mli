(** One differential-fuzzing case: a quantized network, a concrete input
    with its noise-free prediction, and a noise range small enough for the
    {!Fannet.Backend.Explicit} enumerator to act as ground truth.

    Cases carry the per-case seed they were generated from, so a failure
    found anywhere (CI, a long fuzz run, a user machine) is reproducible
    from two integers: the corpus seed and the case seed. Corpora persist
    as JSON ({!Util.Json}) and reload bit-identically. *)

type t = {
  id : int;              (** position in the generated corpus *)
  seed : int;            (** per-case generator seed (replays this case) *)
  net : Nn.Qnet.t;       (** two layers: ReLU hidden, identity output *)
  input : int array;
  label : int;           (** noise-free prediction of [net] on [input] *)
  spec : Fannet.Noise.spec;
}

val equal : t -> t -> bool
(** Structural equality over every field (seed corpus determinism checks). *)

val size : t -> int
(** Shrinking measure: noise-range width + parameter mass + input mass.
    Every {!Shrink} candidate strictly decreases it, so greedy shrinking
    terminates. *)

val to_string : t -> string
(** One-line human-readable summary (dimensions, spec, seed). *)

val to_json : t -> Util.Json.t
val of_json : Util.Json.t -> (t, string) result

val corpus_to_json : seed:int -> t list -> Util.Json.t
(** The persisted corpus format:
    [{"format":"fannet-fuzz-corpus","version":1,"seed":S,"cases":[...]}]. *)

val corpus_of_json : Util.Json.t -> (int * t list, string) result
(** Returns the recorded corpus seed and the cases. *)

val save_corpus : string -> seed:int -> t list -> unit
val load_corpus : string -> (int * t list, string) result

type lenient = {
  corpus_seed : int;
  good : t list;              (** cases that parsed and validated *)
  bad : (int * string) list;  (** malformed cases: index, error (path-prefixed) *)
}

val load_corpus_lenient : string -> (lenient, string) result
(** Like {!load_corpus} but resilient to per-case damage: a case that
    fails to parse or validate is skipped and reported in [bad] instead
    of failing the whole load, so a replay can process the rest of a
    partially corrupted corpus. [Error] only for unrecoverable damage —
    an unreadable file, malformed top-level JSON (reported with the file
    name and byte offset), or a broken envelope. *)
