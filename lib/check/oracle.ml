module B = Fannet.Backend
module N = Fannet.Noise

type runner =
  B.t -> Nn.Qnet.t -> N.spec -> input:int array -> label:int -> B.verdict

type failure = { property : string; backend : string; detail : string }

type result = { failures : failure list; ground_truth : B.verdict }

let failure_to_string f =
  Printf.sprintf "[%s] %s: %s" f.property f.backend f.detail

let explicit = B.Explicit { limit = B.default_explicit_limit }

let complete_backends = [ B.Bnb; B.Smt; B.Cascade B.Bnb; B.Cascade B.Smt ]

let backends_under_test = (explicit :: complete_backends) @ [ B.Interval ]

(* A backend that raises must not abort the whole fuzz run: fold the
   exception into a distinguishable verdict-with-error. *)
type outcome = Verdict of B.verdict | Raised of string

let outcome_equal a b =
  match (a, b) with
  | Verdict va, Verdict vb -> B.verdict_equal va vb
  | Raised ma, Raised mb -> ma = mb
  | Verdict _, Raised _ | Raised _, Verdict _ -> false

let outcome_to_string = function
  | Verdict v -> B.verdict_to_string v
  | Raised msg -> "exception: " ^ msg

let check_case ?(run : runner = fun b -> B.exists_flip b) ?(check_parallel = true)
    ?(check_certificate = true) ?(check_portfolio = true) ?(check_count = true)
    (case : Case.t) =
  let { Case.net; input; label; spec; _ } = case in
  let run_one backend =
    match run backend net spec ~input ~label with
    | v -> Verdict v
    | exception e -> Raised (Printexc.to_string e)
  in
  let all = Array.of_list backends_under_test in
  (* The jobs=1 vector is what every property below is checked on; the
     parallel-determinism property re-runs it on a multi-worker pool.
     That doubles the backend cost, so the driver samples it rather than
     paying it on every case. *)
  let verdicts = Util.Parallel.map ~jobs:1 run_one all in
  let failures = ref [] in
  let fail property backend detail =
    failures := { property; backend = B.to_string backend; detail } :: !failures
  in
  if check_parallel then begin
    let verdicts_pooled = Util.Parallel.map ~jobs:4 run_one all in
    Array.iteri
      (fun i backend ->
        if not (outcome_equal verdicts.(i) verdicts_pooled.(i)) then
          fail "parallel-determinism" backend
            (Printf.sprintf "jobs=1 gave %s but jobs=4 gave %s"
               (outcome_to_string verdicts.(i))
               (outcome_to_string verdicts_pooled.(i))))
      all
  end;
  let outcome_of backend =
    let rec index i =
      if i = Array.length all then
        invalid_arg "Oracle: backend not under test"
      else if all.(i) = backend then verdicts.(i)
      else index (i + 1)
    in
    index 0
  in
  (* Ground truth. *)
  let ground_truth =
    match outcome_of explicit with
    | Verdict v -> v
    | Raised msg ->
        fail "explicit-oracle" explicit msg;
        (* The oracle itself could not decide: undecidable-by-construction. *)
        B.Unknown Resil.Budget.Incomplete
  in
  (* Witness validity, for every backend that produced one. *)
  Array.iteri
    (fun i backend ->
      match verdicts.(i) with
      | Verdict (B.Flip v) ->
          if not (N.in_range spec v) then
            fail "witness-valid" backend
              (Printf.sprintf "witness %s outside the noise range" (N.to_string v))
          else if N.predict net spec ~input v = label then
            fail "witness-valid" backend
              (Printf.sprintf "witness %s does not flip the prediction"
                 (N.to_string v))
      | Verdict (B.Robust | B.Unknown _) | Raised _ -> ())
    all;
  (* Complete backends agree with the enumerator. *)
  List.iter
    (fun backend ->
      match outcome_of backend with
      | Raised msg -> fail "complete-agreement" backend msg
      | Verdict (B.Unknown _) ->
          fail "complete-agreement" backend "complete backend answered unknown"
      | Verdict v -> (
          match (ground_truth, v) with
          | B.Robust, B.Robust | B.Flip _, B.Flip _ -> ()
          | B.Unknown _, _ -> () (* explicit already failed above *)
          | B.Robust, B.Flip w ->
              fail "complete-agreement" backend
                (Printf.sprintf
                   "claims flip %s but the enumerator proves the range robust"
                   (N.to_string w))
          | B.Flip w, B.Robust ->
              fail "complete-agreement" backend
                (Printf.sprintf
                   "claims robust but the enumerator found flip %s"
                   (N.to_string w))
          | _, B.Unknown _ -> assert false))
    complete_backends;
  (* Interval soundness. *)
  (match outcome_of B.Interval with
  | Raised msg -> fail "interval-sound" B.Interval msg
  | Verdict (B.Flip v) ->
      fail "interval-sound" B.Interval
        (Printf.sprintf "interval propagation cannot produce witnesses, got %s"
           (N.to_string v))
  | Verdict B.Robust -> (
      match ground_truth with
      | B.Flip w ->
          fail "interval-sound" B.Interval
            (Printf.sprintf "claims robust but the enumerator found flip %s"
               (N.to_string w))
      | B.Robust | B.Unknown _ -> ())
  | Verdict (B.Unknown _) -> ());
  (* Certificate validity: the certified SMT path must agree with the
     enumerator, produce a certificate, and that certificate must pass the
     independent lib/cert checker. Run sequentially (it is one more SMT
     solve plus a proof check), and sampled by the driver like the
     parallel-determinism re-run. *)
  if check_certificate then begin
    match B.certified_exists_flip net spec ~input ~label with
    | exception e -> fail "certificate-valid" B.Smt (Printexc.to_string e)
    | cv -> (
        (match (ground_truth, cv.B.cv_verdict) with
        | B.Robust, B.Robust | B.Flip _, B.Flip _ | B.Unknown _, _ -> ()
        | (B.Robust | B.Flip _), v ->
            fail "certificate-valid" B.Smt
              (Printf.sprintf
                 "certified verdict %s disagrees with the enumerator's %s"
                 (B.verdict_to_string v)
                 (B.verdict_to_string ground_truth)));
        (match (cv.B.cv_verdict, cv.B.cv_cert) with
        | (B.Robust | B.Flip _), None ->
            fail "certificate-valid" B.Smt "decided verdict without a certificate"
        | _ -> ());
        match B.check_certified net spec ~input ~label cv with
        | Ok () -> ()
        | Error e -> fail "certificate-valid" B.Smt e)
  end;
  (* Portfolio agreement: the raced diversified solvers must reach the
     enumerator's decision whatever member wins, report the winning seed
     for every decided verdict, and return a valid witness. Spawns
     domains per query, so sampled by the driver like the certificate
     check. *)
  if check_portfolio then begin
    match Fannet.Portfolio.exists_flip ~width:3 net spec ~input ~label with
    | exception e -> fail "portfolio-agreement" B.Smt (Printexc.to_string e)
    | verdict, seed -> (
        (match (ground_truth, verdict) with
        | B.Robust, B.Robust | B.Flip _, B.Flip _ | B.Unknown _, _ -> ()
        | (B.Robust | B.Flip _), v ->
            fail "portfolio-agreement" B.Smt
              (Printf.sprintf
                 "portfolio verdict %s disagrees with the enumerator's %s"
                 (B.verdict_to_string v)
                 (B.verdict_to_string ground_truth)));
        (match (verdict, seed) with
        | (B.Robust | B.Flip _), None ->
            fail "portfolio-agreement" B.Smt
              "decided portfolio verdict without a winning seed"
        | B.Unknown r, _ ->
            fail "portfolio-agreement" B.Smt
              ("unbudgeted portfolio answered unknown: "
              ^ Resil.Budget.reason_to_string r)
        | (B.Robust | B.Flip _), Some _ -> ());
        match verdict with
        | B.Flip v ->
            if not (N.in_range spec v) then
              fail "portfolio-agreement" B.Smt
                (Printf.sprintf "witness %s outside the noise range"
                   (N.to_string v))
            else if N.predict net spec ~input v = label then
              fail "portfolio-agreement" B.Smt
                (Printf.sprintf "witness %s does not flip the prediction"
                   (N.to_string v))
        | B.Robust | B.Unknown _ -> ())
  end;
  (* Counting agreement: the exact counter must reproduce the brute-force
     flip count, its certificate must pass the independent checker, jobs
     must not change a byte of the answer, and the tight-ε approximate
     counter — whose pivot (1191) exceeds every fuzz-sized flip set, so
     the exact shortcut fires — must agree too. Enumerates the whole
     noise space, so sampled by the driver like the re-runs above. *)
  if check_count then begin
    let n_inputs = Array.length input in
    let space = N.spec_size spec ~n_inputs in
    if space <= 100_000 then begin
      let brute = ref 0 in
      N.iter_vectors spec ~n_inputs (fun v ->
          if N.predict net spec ~input v <> label then incr brute);
      let brute_n = !brute in
      let brute = Util.Bigcount.of_int brute_n in
      let certified_probability ~jobs =
        Fannet.Robustness.probability
          ~mode:(Fannet.Robustness.Exact_mode { certify = true })
          ~jobs net spec ~input ~label
      in
      match certified_probability ~jobs:1 with
      | exception e -> fail "count-exact" explicit (Printexc.to_string e)
      | r ->
          (if r.Fannet.Robustness.status <> Ok () then
             fail "count-exact" explicit "unbudgeted count not decided"
           else if not (Util.Bigcount.equal r.Fannet.Robustness.flips brute) then
             fail "count-exact" explicit
               (Printf.sprintf "counted %s flips but enumeration finds %s"
                  (Util.Bigcount.to_string r.Fannet.Robustness.flips)
                  (Util.Bigcount.to_string brute)));
          (match (ground_truth, Util.Bigcount.is_zero r.Fannet.Robustness.flips) with
          | B.Robust, false ->
              fail "count-exact" explicit
                "nonzero flip count on a range the enumerator proves robust"
          | B.Flip _, true ->
              fail "count-exact" explicit
                "zero flip count but the enumerator found a flip"
          | _ -> ());
          (match r.Fannet.Robustness.certificate with
          | None ->
              fail "count-certificate" explicit "decided count without a certificate"
          | Some cert -> (
              match
                Fannet.Robustness.check_certificate net spec ~input ~label cert
              with
              | Ok () -> ()
              | Error e -> fail "count-certificate" explicit e));
          (match certified_probability ~jobs:4 with
          | exception e -> fail "count-jobs" explicit (Printexc.to_string e)
          | r4 ->
              let cert_bytes r =
                match r.Fannet.Robustness.certificate with
                | Some c -> Util.Json.to_string (Count.Certificate.to_json c)
                | None -> ""
              in
              if
                (not
                   (Util.Bigcount.equal r.Fannet.Robustness.flips
                      r4.Fannet.Robustness.flips))
                || cert_bytes r <> cert_bytes r4
              then
                fail "count-jobs" explicit
                  "jobs=1 and jobs=4 disagree (count or certificate bytes)");
          (* Below the pivot the approximate counter must short-circuit to
             bounded enumeration — exact, deterministic, seed-independent. *)
          if brute_n <= 1000 then begin
            match
              Fannet.Robustness.probability
                ~mode:
                  (Fannet.Robustness.Approx_mode
                     { epsilon = 0.1; delta = 0.2; seed = case.Case.id })
                net spec ~input ~label
            with
            | exception e -> fail "count-approx" explicit (Printexc.to_string e)
            | ra ->
                if not (Util.Bigcount.equal ra.Fannet.Robustness.flips brute) then
                  fail "count-approx" explicit
                    (Printf.sprintf
                       "tight-ε estimate %s should short-circuit to the exact \
                        count %s"
                       (Util.Bigcount.to_string ra.Fannet.Robustness.flips)
                       (Util.Bigcount.to_string brute))
          end
    end
  end;
  (* Cascade lattice: a decided interval verdict forces the cascade. *)
  (match outcome_of B.Interval with
  | Verdict B.Robust ->
      List.iter
        (fun backend ->
          match backend with
          | B.Cascade _ -> (
              match outcome_of backend with
              | Verdict B.Robust -> ()
              | Verdict v ->
                  fail "cascade-lattice" backend
                    (Printf.sprintf
                       "interval proved robust but the cascade answered %s"
                       (B.verdict_to_string v))
              | Raised msg -> fail "cascade-lattice" backend msg)
          | _ -> ())
        complete_backends
  | Verdict (B.Unknown _ | B.Flip _) | Raised _ -> ());
  { failures = List.rev !failures; ground_truth }
