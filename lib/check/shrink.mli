(** Greedy case minimization.

    Given a failing case and the predicate that classifies a case as still
    failing, repeatedly applies the first size-reducing transformation
    that preserves the failure until none applies. Candidate moves, in
    order of structural impact:

    - narrow the noise range toward the single point [{0}], and drop the
      bias-noise node;
    - drop a hidden neuron, an input node (with its weight column and
      input component), or an output class (keeping at least 1-1-2);
    - move individual weights, biases and input components toward zero
      (zero them outright, then halve them).

    Structural moves recompute the case label as the shrunken network's
    noise-free prediction, so the shrunken case remains a well-formed P2
    query. Every move strictly decreases {!Case.size}, so shrinking
    terminates; the result keeps the original case's id and seed for the
    failure report. *)

val candidates : Case.t -> Case.t Seq.t
(** All single-step shrink candidates, most aggressive first. Every
    candidate satisfies the generator's invariants (two layers, ReLU
    hidden, identity output, label = noise-free prediction) and has a
    strictly smaller {!Case.size}. *)

val shrink : fails:(Case.t -> bool) -> Case.t -> Case.t
(** Greedy fixpoint of [candidates] under [fails]. The result still fails
    ([fails] is only called on candidates; the input case is assumed
    failing) and no single candidate step from it fails. [fails] should be
    total — wrap oracle calls so exceptions count as failures. *)
