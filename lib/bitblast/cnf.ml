type t = { solver : Sat.Solver.t; true_lit : Sat.Lit.t }

let create ?sink () =
  let solver = Sat.Solver.create () in
  (* Install the proof sink before the first clause so a checker sees the
     complete CNF, including the shared true-literal unit. *)
  (match sink with None -> () | Some _ -> Sat.Solver.set_proof_sink solver sink);
  let v = Sat.Solver.new_var solver in
  let true_lit = Sat.Lit.pos v in
  Sat.Solver.add_clause solver [ true_lit ];
  { solver; true_lit }

let solver t = t.solver

let fresh t = Sat.Lit.pos (Sat.Solver.new_var t.solver)

let btrue t = t.true_lit

let bfalse t = Sat.Lit.neg t.true_lit

let of_bool t b = if b then btrue t else bfalse t

let add_clause t lits = Sat.Solver.add_clause t.solver lits

let assert_lit t l = add_clause t [ l ]

let g_not l = Sat.Lit.neg l

let is_true t l = Sat.Lit.equal l t.true_lit

let is_false t l = Sat.Lit.equal l (Sat.Lit.neg t.true_lit)

let g_and t a b =
  if is_false t a || is_false t b then bfalse t
  else if is_true t a then b
  else if is_true t b then a
  else if Sat.Lit.equal a b then a
  else if Sat.Lit.equal a (Sat.Lit.neg b) then bfalse t
  else begin
    let o = fresh t in
    add_clause t [ Sat.Lit.neg o; a ];
    add_clause t [ Sat.Lit.neg o; b ];
    add_clause t [ o; Sat.Lit.neg a; Sat.Lit.neg b ];
    o
  end

let g_or t a b = g_not (g_and t (g_not a) (g_not b))

let g_xor t a b =
  if is_false t a then b
  else if is_false t b then a
  else if is_true t a then g_not b
  else if is_true t b then g_not a
  else if Sat.Lit.equal a b then bfalse t
  else if Sat.Lit.equal a (Sat.Lit.neg b) then btrue t
  else begin
    let o = fresh t in
    add_clause t [ Sat.Lit.neg o; a; b ];
    add_clause t [ Sat.Lit.neg o; Sat.Lit.neg a; Sat.Lit.neg b ];
    add_clause t [ o; Sat.Lit.neg a; b ];
    add_clause t [ o; a; Sat.Lit.neg b ];
    o
  end

let g_iff t a b = g_not (g_xor t a b)

let g_implies t a b = g_or t (g_not a) b

let g_mux t ~sel ~if_true ~if_false =
  if is_true t sel then if_true
  else if is_false t sel then if_false
  else if Sat.Lit.equal if_true if_false then if_true
  else if Sat.Lit.equal if_true (Sat.Lit.neg if_false) then g_iff t sel if_true
  else begin
    let o = fresh t in
    add_clause t [ Sat.Lit.neg sel; Sat.Lit.neg o; if_true ];
    add_clause t [ Sat.Lit.neg sel; o; Sat.Lit.neg if_true ];
    add_clause t [ sel; Sat.Lit.neg o; if_false ];
    add_clause t [ sel; o; Sat.Lit.neg if_false ];
    o
  end

let g_and_list t = List.fold_left (g_and t) (btrue t)

let g_or_list t = List.fold_left (g_or t) (bfalse t)

let g_xor_list t = List.fold_left (g_xor t) (bfalse t)

let g_full_adder t a b cin =
  let sum = g_xor t (g_xor t a b) cin in
  let carry = g_or t (g_and t a b) (g_and t cin (g_xor t a b)) in
  (sum, carry)

let lit_value t l = Sat.Solver.value t.solver l
