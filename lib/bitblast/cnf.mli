(** Tseitin circuit-to-CNF builder over a CDCL solver.

    Every gate returns a literal equivalent to the gate's output and adds
    the defining clauses to the underlying solver. Gates fold constants:
    feeding {!btrue}/{!bfalse} (or a literal and its negation) produces no
    clauses. *)

type t

val create : ?sink:(Sat.Solver.proof_step -> unit) -> unit -> t
(** [?sink] is installed as the underlying solver's DRUP proof sink
    before any clause is added, so the sink observes the full CNF. *)

val solver : t -> Sat.Solver.t

val fresh : t -> Sat.Lit.t
(** A fresh positive literal. *)

val btrue : t -> Sat.Lit.t
(** A literal asserted true (one shared variable). *)

val bfalse : t -> Sat.Lit.t

val of_bool : t -> bool -> Sat.Lit.t

val assert_lit : t -> Sat.Lit.t -> unit
(** Add the unit clause [l]. *)

val add_clause : t -> Sat.Lit.t list -> unit

val g_not : Sat.Lit.t -> Sat.Lit.t
val g_and : t -> Sat.Lit.t -> Sat.Lit.t -> Sat.Lit.t
val g_or : t -> Sat.Lit.t -> Sat.Lit.t -> Sat.Lit.t
val g_xor : t -> Sat.Lit.t -> Sat.Lit.t -> Sat.Lit.t
val g_iff : t -> Sat.Lit.t -> Sat.Lit.t -> Sat.Lit.t
val g_implies : t -> Sat.Lit.t -> Sat.Lit.t -> Sat.Lit.t

val g_mux : t -> sel:Sat.Lit.t -> if_true:Sat.Lit.t -> if_false:Sat.Lit.t -> Sat.Lit.t
(** [sel ? if_true : if_false]. *)

val g_and_list : t -> Sat.Lit.t list -> Sat.Lit.t
val g_or_list : t -> Sat.Lit.t list -> Sat.Lit.t

val g_xor_list : t -> Sat.Lit.t list -> Sat.Lit.t
(** Odd parity of the list, as a Tseitin XOR chain ({!bfalse} for the
    empty list). The building block of hash-based approximate model
    counting: asserting (or assuming) the returned literal keeps exactly
    the models whose projection has odd parity over the listed bits,
    halving the model count in expectation over a random bit subset. *)

val g_full_adder : t -> Sat.Lit.t -> Sat.Lit.t -> Sat.Lit.t -> Sat.Lit.t * Sat.Lit.t
(** [(sum, carry_out)] of three input bits. *)

val lit_value : t -> Sat.Lit.t -> bool
(** Value of a literal in the solver's current model (after a Sat
    answer). *)
