type trigger = Always | Nth of int | Every of int

(* site -> (trigger, hits so far). Guarded by [lock]; [any] is the
   lock-free fast path checked before touching the table. *)
let table : (string, trigger * int ref) Hashtbl.t = Hashtbl.create 7
let lock = Mutex.create ()
let any = Atomic.make false

let parse_one spec =
  let split sep =
    match String.index_opt spec sep with
    | None -> None
    | Some i ->
        Some
          ( String.sub spec 0 i,
            int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  match (split '@', split '%') with
  | Some (name, Some n), _ when n >= 1 -> (name, Nth n)
  | _, Some (name, Some n) when n >= 1 -> (name, Every n)
  | None, None -> (spec, Always)
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Faultpoint: bad trigger %S (want site, site@k or site%%k)" spec)

let arm spec =
  String.split_on_char ',' spec
  |> List.iter (fun s ->
         let s = String.trim s in
         if s <> "" then begin
           let name, trig = parse_one s in
           Mutex.lock lock;
           Hashtbl.replace table name (trig, ref 0);
           Atomic.set any true;
           Mutex.unlock lock
         end)

let clear () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Atomic.set any false;
  Mutex.unlock lock

let () = match Sys.getenv_opt "FANNET_FAULTS" with Some s -> arm s | None -> ()

let hit name =
  if not (Atomic.get any) then false
  else begin
    Mutex.lock lock;
    let fire =
      match Hashtbl.find_opt table name with
      | None -> false
      | Some (trig, hits) ->
          incr hits;
          (match trig with
          | Always -> true
          | Nth k -> !hits = k
          | Every k -> !hits mod k = 0)
    in
    Mutex.unlock lock;
    fire
  end

let guard name e = if hit name then raise e

let armed () =
  Mutex.lock lock;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) table [] in
  Mutex.unlock lock;
  List.sort compare names

let snapshot () =
  Mutex.lock lock;
  let specs =
    Hashtbl.fold
      (fun name (trig, _) acc ->
        (match trig with
        | Always -> name
        | Nth k -> Printf.sprintf "%s@%d" name k
        | Every k -> Printf.sprintf "%s%%%d" name k)
        :: acc)
      table []
  in
  Mutex.unlock lock;
  String.concat "," (List.sort compare specs)
