(** Resource budgets and cooperative cancellation.

    A {!t} bundles the three resource caps a long-running analysis must
    respect — a wall-clock deadline, a conflict cap for the SAT solver,
    and a major-heap watermark — plus a thread-safe cancellation
    {!token}. Budgets are {e cooperative}: code on a hot loop calls
    {!check} every few hundred iterations and unwinds with a typed
    reason when some cap has been hit; nothing is ever interrupted
    asynchronously, so solver and enumeration state stays consistent and
    sessions remain reusable after an exhausted query.

    A budget may be shared by several workers (all fields are immutable
    or atomic); the first recorded reason wins and is what {!why}
    reports. *)

type reason =
  | Deadline    (** wall-clock deadline passed *)
  | Conflicts   (** SAT conflict cap exhausted *)
  | Memory      (** major-heap watermark exceeded (or solver OOM) *)
  | Cancelled   (** cancellation token fired *)
  | Incomplete  (** the procedure cannot decide by construction
                    (e.g. pure interval analysis) — not a resource cap *)

val reason_to_string : reason -> string
(** ["deadline"], ["conflicts"], ["memory"], ["cancelled"],
    ["incomplete"] — the CLI's exit-2 reason vocabulary. *)

val retryable : reason -> bool
(** Whether escalation (retry with a bigger budget / stronger backend)
    can help: true for [Deadline]/[Conflicts]/[Memory], false for
    [Cancelled] (the user asked to stop). [Incomplete] is retryable only
    by switching backend, which is the escalation policy's decision, so
    it reports false here. *)

(** {1 Cancellation tokens} *)

type token

val token : unit -> token
(** Fresh, un-fired token. *)

val cancel : token -> unit
(** Fire the token (idempotent, safe from any domain or signal
    handler). *)

val cancelled : token -> bool
(** Whether this token — or any ancestor it is {!link}ed to — has
    fired. *)

val link : token -> token
(** A child token that also reads as cancelled once the parent fires.
    Cancelling the child does {e not} fire the parent: a portfolio
    winner can stop its losers (their child tokens) without poisoning
    the caller's token, while the caller cancelling its own token still
    stops every worker. *)

(** {1 Budgets} *)

type t

val create :
  ?timeout_s:float -> ?conflicts:int -> ?max_mem_mb:int -> ?token:token ->
  unit -> t
(** A budget whose deadline (if any) starts now, measured on
    {!Obs.Clock}. [conflicts] caps SAT conflicts {e per query}, not
    cumulatively. [max_mem_mb] is an OCaml major-heap watermark read via
    [Gc.quick_stat] — approximate, checked at the same cadence as the
    deadline. Omitted caps are unlimited. *)

val unlimited : unit -> t
(** No caps, fresh token; {!check} only fires if the token is
    cancelled. *)

val conflicts : t -> int option
(** The per-query conflict cap, for callers that meter conflicts
    themselves (the SAT solver). *)

val timeout_s : t -> float option

val remaining_s : t -> float option
(** Seconds left until the deadline (clamped at 0), [None] when the
    budget has no deadline — what a derived worker budget should use as
    its own timeout so racing workers cannot outlive their parent. *)

val cancellation : t -> token
(** The budget's token — cancel it to stop every worker sharing the
    budget. *)

val check : t -> reason option
(** [Some r] once some cap is exhausted (sticky: subsequent calls keep
    returning a reason), [None] while inside budget. Cheap enough for a
    per-64-conflicts or per-box cadence: one atomic load plus a clock
    read. Records the first reason (see {!why}) and bumps the
    ["resil.exhausted.<reason>"] observability counter on the first
    firing. *)

val record : t -> reason -> unit
(** Record an exhaustion reason discovered outside {!check} (e.g. the
    solver's own conflict meter, or a caught [Out_of_memory]). First
    reason wins. *)

val why : t -> reason option
(** The first recorded exhaustion reason, if any. *)

val exhausted : t -> bool

val scale : by:int -> t -> t
(** A fresh budget for a retry: timeout and conflict cap multiplied by
    [by] (deadline restarted from now), same memory watermark, {e same}
    cancellation token (cancelling the original still stops retries),
    cleared reason. *)
