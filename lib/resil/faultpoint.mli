(** Named fault-injection sites for resilience testing.

    Production code plants a site with {!hit} (or {!guard}) at the place
    a real-world fault would strike — a solver allocation, a worker
    domain body, a checkpoint write, a corpus read. Sites are inert
    unless armed: the [FANNET_FAULTS] environment variable (read once at
    startup) or {!arm} names the sites to fire. The disabled fast path
    is one atomic load.

    Spec syntax (comma-separated): [site] fires on every hit;
    [site@k] fires on the k-th hit only (1-based), letting tests strike
    mid-enumeration; [site%k] fires periodically on every k-th hit
    (hits k, 2k, 3k, ...), the shape a kill schedule wants. Example:
    [FANNET_FAULTS=sat.oom,ckpt.torn@2,serve.worker.kill%7].

    Known sites (the fault matrix exercised by [test/test_resil.ml]
    and [test/test_serve.ml]):
    - ["sat.oom"]            — solver raises [Out_of_memory] at solve entry
    - ["worker.raise"]       — a parallel worker body raises mid-batch
    - ["ckpt.torn"]          — checkpoint write is torn (no atomic rename)
    - ["corpus.corrupt"]     — corpus JSON is truncated before parsing
    - ["backend.unknown"]    — a backend query returns [Unknown]
    - ["serve.worker.raise"] — a daemon compute job raises mid-query
    - ["serve.worker.kill"]  — a supervised worker process dies ([_exit 137])
                               mid-query, as if OOM-killed
    - ["serve.store.torn"]   — a verdict-store append writes half a record
                               and stops, as if the daemon crashed mid-write
    - ["serve.conn.reset"]   — a client connection is reset (fd closed)
                               just before a reply is sent *)

val arm : string -> unit
(** Arm sites programmatically from a spec string (same syntax as
    [FANNET_FAULTS]); adds to whatever is already armed. *)

val clear : unit -> unit
(** Disarm every site, including those armed via the environment. *)

val hit : string -> bool
(** Register one hit on the named site; [true] when the fault should
    fire now. Never fires for sites that are not armed. Thread-safe. *)

val guard : string -> exn -> unit
(** [guard site e] raises [e] when [hit site] fires; otherwise a
    no-op. *)

val armed : unit -> string list
(** Currently armed site names (sorted), for diagnostics. *)

val snapshot : unit -> string
(** The armed table as a spec string {!arm} accepts (sorted,
    comma-separated; [""] when nothing is armed). Hit counters are not
    part of the snapshot — re-arming starts them at zero. Lets a
    supervising process replicate its fault schedule into a fresh
    worker. *)
