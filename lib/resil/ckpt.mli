(** Crash-safe checkpoint files, format [fannet-ckpt/1].

    A checkpoint is a JSON payload followed by a one-line footer

    {v <payload JSON>\nfannet-ckpt/1 <payload-bytes> <fnv1a64-hex>\n v}

    so a torn or truncated write is always detectable: a partial file
    either lacks a well-formed footer line or fails the length/checksum
    test. Writes go through a temporary file in the same directory and
    an atomic [rename], so a reader never observes a half-written
    checkpoint under POSIX semantics; the footer catches the remaining
    cases (power loss before fsync, copies through non-atomic
    channels — and the injected ["ckpt.torn"] fault).

    The payload is wrapped as
    [{"format":"fannet-ckpt","version":1,"kind":<kind>,"data":<data>}];
    [kind] names the producing analysis (["extract"], ["tolerance"]) and
    a mismatch on load is an error, so an extract checkpoint cannot be
    resumed by the tolerance command. *)

val save : kind:string -> path:string -> Util.Json.t -> unit
(** Atomically write [data] as a [kind] checkpoint at [path]. Under the
    ["ckpt.torn"] fault the write is deliberately torn (half the bytes,
    no rename) to exercise the detection path. Raises [Sys_error] on
    I/O failure. *)

val load : kind:string -> path:string -> (Util.Json.t, string) result
(** Read back the ["data"] payload. Errors (all strings mention [path]):
    missing file, torn/truncated content, checksum mismatch, malformed
    JSON, wrong format version or kind. Never raises on bad content. *)

val fnv1a64 : string -> int64
(** The footer checksum: FNV-1a, 64-bit. Exposed for tests. *)
