type reason = Deadline | Conflicts | Memory | Cancelled | Incomplete

let reason_to_string = function
  | Deadline -> "deadline"
  | Conflicts -> "conflicts"
  | Memory -> "memory"
  | Cancelled -> "cancelled"
  | Incomplete -> "incomplete"

let retryable = function
  | Deadline | Conflicts | Memory -> true
  | Cancelled | Incomplete -> false

(* A token optionally chains to a parent: firing the parent fires every
   linked child, firing a child leaves the parent (and its other
   children) untouched. Chains are short (portfolio workers link once to
   the caller's token), so the recursive read costs one extra atomic
   load per level. *)
type token = { fired : bool Atomic.t; parent : token option }

let token () = { fired = Atomic.make false; parent = None }
let link parent = { fired = Atomic.make false; parent = Some parent }
let cancel t = Atomic.set t.fired true

let rec cancelled t =
  Atomic.get t.fired
  || (match t.parent with Some p -> cancelled p | None -> false)

type t = {
  timeout_s : float option;
  deadline_ns : int64 option;  (* absolute Obs.Clock reading *)
  conflicts : int option;
  max_mem_mb : int option;
  mem_words : int option;      (* watermark in major-heap words *)
  tok : token;
  why : reason option Atomic.t;
}

(* Exhaustion counters: one per reason, created eagerly so the hot path
   never allocates. *)
let exhausted_counter =
  let c r = Obs.Metrics.counter ("resil.exhausted." ^ reason_to_string r) in
  let deadline = c Deadline
  and conflicts = c Conflicts
  and memory = c Memory
  and cancelled = c Cancelled
  and incomplete = c Incomplete in
  function
  | Deadline -> deadline
  | Conflicts -> conflicts
  | Memory -> memory
  | Cancelled -> cancelled
  | Incomplete -> incomplete

let words_of_mb mb = mb * 1024 * 1024 / (Sys.word_size / 8)

let create ?timeout_s ?conflicts ?max_mem_mb ?token:tok () =
  let tok = match tok with Some t -> t | None -> token () in
  let deadline_ns =
    Option.map
      (fun s -> Int64.add (Obs.Clock.now_ns ()) (Int64.of_float (s *. 1e9)))
      timeout_s
  in
  {
    timeout_s;
    deadline_ns;
    conflicts;
    max_mem_mb;
    mem_words = Option.map words_of_mb max_mem_mb;
    tok;
    why = Atomic.make None;
  }

let unlimited () = create ()
let conflicts b = b.conflicts
let timeout_s b = b.timeout_s
let cancellation b = b.tok

let remaining_s b =
  Option.map
    (fun d ->
      Float.max 0. (Int64.to_float (Int64.sub d (Obs.Clock.now_ns ())) /. 1e9))
    b.deadline_ns

let record b r =
  if Atomic.compare_and_set b.why None (Some r) then
    Obs.Metrics.incr (exhausted_counter r)

let why b = Atomic.get b.why
let exhausted b = why b <> None

let check b =
  match Atomic.get b.why with
  | Some _ as r -> r (* sticky: once exhausted, stay exhausted *)
  | None ->
      let r =
        if cancelled b.tok then Some Cancelled
        else
          match b.deadline_ns with
          | Some d when Obs.Clock.now_ns () > d -> Some Deadline
          | _ -> (
              match b.mem_words with
              | Some w when (Gc.quick_stat ()).Gc.heap_words > w -> Some Memory
              | _ -> None)
      in
      (match r with Some reason -> record b reason | None -> ());
      r

let scale ~by b =
  create
    ?timeout_s:(Option.map (fun s -> s *. float_of_int by) b.timeout_s)
    ?conflicts:(Option.map (fun c -> c * by) b.conflicts)
    ?max_mem_mb:b.max_mem_mb ~token:b.tok ()
