let magic = "fannet-ckpt/1"

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let wrap ~kind data =
  Util.Json.Obj
    [
      ("format", Util.Json.String "fannet-ckpt");
      ("version", Util.Json.Int 1);
      ("kind", Util.Json.String kind);
      ("data", data);
    ]

let write_raw path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let save ~kind ~path data =
  let payload = Util.Json.to_string (wrap ~kind data) in
  let contents =
    Printf.sprintf "%s\n%s %d %Lx\n" payload magic (String.length payload)
      (fnv1a64 payload)
  in
  if Faultpoint.hit "ckpt.torn" then
    (* Injected torn write: half the bytes straight to the final path,
       bypassing the tmp+rename protocol. [load] must reject this. *)
    write_raw path (String.sub contents 0 (String.length contents / 2))
  else begin
    let tmp = path ^ ".tmp" in
    write_raw tmp contents;
    Sys.rename tmp path
  end

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~kind ~path =
  let fail fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt in
  if not (Sys.file_exists path) then fail "no such checkpoint"
  else
    match read_all path with
    | exception Sys_error m -> fail "unreadable checkpoint: %s" m
    | contents -> (
        (* Strip the final newline, then split payload from the footer
           line at the last remaining newline. *)
        let n = String.length contents in
        let body =
          if n > 0 && contents.[n - 1] = '\n' then String.sub contents 0 (n - 1)
          else contents
        in
        match String.rindex_opt body '\n' with
        | None -> fail "torn or truncated checkpoint (no footer line)"
        | Some i -> (
            let payload = String.sub body 0 i in
            let footer = String.sub body (i + 1) (String.length body - i - 1) in
            match String.split_on_char ' ' footer with
            | [ m; len; sum ] when m = magic -> (
                match (int_of_string_opt len, Int64.of_string_opt ("0x" ^ sum)) with
                | Some len, Some sum
                  when len = String.length payload && sum = fnv1a64 payload -> (
                    match Util.Json.of_string payload with
                    | Error m -> fail "corrupt checkpoint payload: %s" m
                    | Ok json -> (
                        let open Util.Json in
                        match
                          ( member "format" json,
                            member "version" json,
                            member "kind" json,
                            member "data" json )
                        with
                        | Some (String "fannet-ckpt"), Some (Int 1),
                          Some (String k), Some data ->
                            if k = kind then Ok data
                            else
                              fail "checkpoint kind mismatch (got %S, want %S)" k
                                kind
                        | _ -> fail "malformed checkpoint envelope"))
                | _, _ ->
                    fail "torn or truncated checkpoint (checksum mismatch)")
            | _ -> fail "torn or truncated checkpoint (bad footer %S)" footer))
