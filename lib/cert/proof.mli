(** In-memory DRUP proof traces.

    A trace is an append-only event log in DIMACS integers, fed by a
    {!Sat.Solver} proof sink (see {!sink}/{!attach}). In an incremental
    session one trace accumulates across many [solve] calls: [Input] and
    [Learn]/[Delete] events pile up, and each [Unsat] answer appends one
    [Empty] event carrying the assumptions it was derived under. A
    certificate for any one answer is a snapshot of the prefix up to its
    [Empty] event (see {!Verdict.of_trace_unsat}). *)

type step =
  | Input of int list  (** original clause, pre-simplification *)
  | Learn of int list  (** RUP-derivable lemma; [[]] is the empty clause *)
  | Delete of int list  (** learnt clause dropped by the solver *)
  | Empty of int list
      (** one [Unsat] conclusion; payload = its assumption literals *)

type trace

val create : unit -> trace
val n_steps : trace -> int
val to_list : trace -> step list
val iter : (step -> unit) -> trace -> unit

val last : trace -> step option
(** Most recent event, if any. *)

val sink : trace -> Sat.Solver.proof_step -> unit
(** Append one solver event, translating literals to DIMACS. Pass
    [Some (sink t)] to {!Sat.Solver.set_proof_sink}. *)

val attach : Sat.Solver.t -> trace
(** [attach s] creates a fresh trace and installs it as [s]'s proof sink. *)
