(** Independent DRUP proof checker.

    Verifies that a CNF formula (plus optional assumption units) is
    unsatisfiable by replaying a DRUP proof: a sequence of clause
    additions, each of which must be derivable by {e reverse unit
    propagation} (RUP) — asserting the negation of every literal in the
    clause and unit-propagating must yield a conflict — interleaved with
    clause deletions. The proof is accepted only if the empty clause
    becomes derivable, i.e. propagation alone reaches a contradiction.

    This module is the trusted core of the certificate subsystem. It is a
    from-scratch forward checker in the style of drat-trim's
    backward-compatible mode and deliberately shares {e no} code with
    {!Sat.Solver}: clauses are plain DIMACS integer lists, propagation is
    an independent two-watched-literal loop, and there is no conflict
    analysis, no heuristics, no restarts — roughly a tenth of the solver's
    code, which is the point of the trusted-code-base argument (see
    DESIGN.md).

    Literals use DIMACS conventions: variables are [1..n_vars], negative
    integers are negated literals, [0] never appears inside a clause. *)

type step =
  | Learn of int list
      (** Clause claimed derivable by RUP from the live database. [Learn []]
          claims the database is already contradictory. *)
  | Delete of int list  (** Remove one copy of this clause (order-insensitive). *)

val check_unsat :
  n_vars:int ->
  cnf:int list list ->
  assumptions:int list ->
  proof:step list ->
  (unit, string) result
(** [check_unsat ~n_vars ~cnf ~assumptions ~proof] verifies that
    [cnf ∧ assumptions ⊢ ⊥]: every [Learn] step must pass the RUP check
    against the clauses loaded so far (original CNF, assumption units, and
    previously learned clauses, minus deletions), and after the last step
    unit propagation must have derived a contradiction. Returns
    [Error reason] on the first failing step, a malformed literal, or a
    proof that never reaches the empty clause.

    Deletion of a clause currently forcing a unit (at most one non-false
    literal) is skipped rather than performed, mirroring how solvers never
    delete reason clauses; this keeps the checker's database a subset of
    the solver's, so sound proofs still verify. *)

val model_check :
  n_vars:int ->
  cnf:int list list ->
  assumptions:int list ->
  model:bool array ->
  (unit, string) result
(** [model_check ~n_vars ~cnf ~assumptions ~model] verifies a SAT answer:
    [model] (length ≥ [n_vars], index [v-1] holds variable [v]'s value)
    must satisfy every clause of [cnf] and every assumption literal. *)
