type step =
  | Input of int list
  | Learn of int list
  | Delete of int list
  | Empty of int list

type trace = { mutable steps : step array; mutable len : int }

let create () = { steps = [||]; len = 0 }

let push t step =
  if t.len = Array.length t.steps then begin
    let cap = max 64 (2 * t.len) in
    let steps = Array.make cap step in
    Array.blit t.steps 0 steps 0 t.len;
    t.steps <- steps
  end;
  t.steps.(t.len) <- step;
  t.len <- t.len + 1

let n_steps t = t.len

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.steps.(i) :: acc) in
  go (t.len - 1) []

let iter f t =
  for i = 0 to t.len - 1 do
    f t.steps.(i)
  done

let last t = if t.len = 0 then None else Some t.steps.(t.len - 1)

let sink t (ev : Sat.Solver.proof_step) =
  let dimacs = List.map Sat.Lit.to_dimacs in
  push t
    (match ev with
    | Sat.Solver.P_input lits -> Input (dimacs lits)
    | Sat.Solver.P_learn lits -> Learn (dimacs lits)
    | Sat.Solver.P_delete lits -> Delete (dimacs lits)
    | Sat.Solver.P_empty lits -> Empty (dimacs lits))

let attach s =
  let t = create () in
  Sat.Solver.set_proof_sink s (Some (sink t));
  t
