type t =
  | Model of {
      n_vars : int;
      cnf : int list list;
      assumptions : int list;
      model : bool array;
    }
  | Refutation of {
      n_vars : int;
      cnf : int list list;
      assumptions : int list;
      proof : Rup.step list;
    }

let trace_cnf trace =
  let acc = ref [] in
  Proof.iter (function Proof.Input lits -> acc := lits :: !acc | _ -> ()) trace;
  List.rev !acc

let of_trace_unsat ~n_vars trace =
  match Proof.last trace with
  | Some (Proof.Empty assumptions) ->
      let cnf = ref [] and proof = ref [] in
      Proof.iter
        (function
          | Proof.Input lits -> cnf := lits :: !cnf
          | Proof.Learn lits -> proof := Rup.Learn lits :: !proof
          | Proof.Delete lits -> proof := Rup.Delete lits :: !proof
          | Proof.Empty _ -> ())
        trace;
      Ok
        (Refutation
           {
             n_vars;
             cnf = List.rev !cnf;
             assumptions;
             proof = List.rev !proof;
           })
  | Some _ -> Error "trace does not end with an Unsat conclusion"
  | None -> Error "empty proof trace"

let of_trace_model ~n_vars ~assumptions ~model trace =
  Model { n_vars; cnf = trace_cnf trace; assumptions; model }

let check = function
  | Model { n_vars; cnf; assumptions; model } ->
      Rup.model_check ~n_vars ~cnf ~assumptions ~model
  | Refutation { n_vars; cnf; assumptions; proof } ->
      Rup.check_unsat ~n_vars ~cnf ~assumptions ~proof

let describe = function
  | Model { n_vars; cnf; assumptions; _ } ->
      Printf.sprintf "model certificate: %d vars, %d clauses, %d assumptions"
        n_vars (List.length cnf) (List.length assumptions)
  | Refutation { n_vars; cnf; assumptions; proof } ->
      let learns =
        List.length (List.filter (function Rup.Learn _ -> true | _ -> false) proof)
      in
      Printf.sprintf
        "refutation certificate: %d vars, %d clauses, %d assumptions, %d \
         lemmas (%d proof steps)"
        n_vars (List.length cnf) (List.length assumptions) learns
        (List.length proof)

let clause_line buf lits =
  List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) lits;
  Buffer.add_string buf "0\n"

let to_drup = function
  | Model _ -> None
  | Refutation { proof; _ } ->
      let buf = Buffer.create 1024 in
      List.iter
        (function
          | Rup.Learn lits -> clause_line buf lits
          | Rup.Delete lits ->
              Buffer.add_string buf "d ";
              clause_line buf lits)
        proof;
      (* External DRUP checkers stop at the empty clause. *)
      Buffer.add_string buf "0\n";
      Some (Buffer.contents buf)

let to_dimacs t =
  let n_vars, cnf, assumptions =
    match t with
    | Model { n_vars; cnf; assumptions; _ }
    | Refutation { n_vars; cnf; assumptions; _ } ->
        (n_vars, cnf, assumptions)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" n_vars
       (List.length cnf + List.length assumptions));
  List.iter (fun lits -> clause_line buf lits) cnf;
  List.iter (fun l -> clause_line buf [ l ]) assumptions;
  Buffer.contents buf
