(** Self-contained verdict certificates.

    A certificate packages everything an independent party needs to
    re-derive one solver answer: the exact bit-blasted CNF, the assumption
    literals the query was posed under, and either a satisfying model or a
    DRUP refutation. {!check} re-validates it using only {!Rup} — never
    the solver — so a certified verdict does not depend on the solver
    being correct.

    The constructors are exposed (rather than the type being abstract) so
    tests can corrupt a certificate and assert that {!check} rejects it. *)

type t =
  | Model of {
      n_vars : int;
      cnf : int list list;
      assumptions : int list;
      model : bool array;
    }
      (** SAT: [model] satisfies every clause of [cnf] and every
          assumption. *)
  | Refutation of {
      n_vars : int;
      cnf : int list list;
      assumptions : int list;
      proof : Rup.step list;
    }
      (** UNSAT: [proof] is a DRUP derivation of [⊥] from
          [cnf ∧ assumptions]. *)

val of_trace_unsat : n_vars:int -> Proof.trace -> (t, string) result
(** Snapshot a refutation certificate from a proof trace whose most
    recent event is the [Empty] conclusion of the [Unsat] answer being
    certified (i.e. call this right after [solve] returned [Unsat]). The
    CNF is every [Input] so far, the proof every [Learn]/[Delete]; earlier
    [Empty] events from previous answers in the same incremental session
    are skipped — they are conclusions relative to {e their} assumptions,
    not clauses. *)

val of_trace_model :
  n_vars:int -> assumptions:int list -> model:bool array -> Proof.trace -> t
(** Snapshot a model certificate: CNF from the trace's [Input] events,
    model and assumptions as given. *)

val check : t -> (unit, string) result
(** Re-validate with {!Rup.check_unsat} / {!Rup.model_check}. *)

val describe : t -> string
(** One-line human summary (kind, sizes). *)

val to_drup : t -> string option
(** Textual DRUP proof ([Refutation] only): one clause per line, DIMACS
    literals, [0]-terminated, deletions prefixed with [d], final line [0]
    (the empty clause). Consumable by external checkers such as drat-trim
    together with {!to_dimacs}. *)

val to_dimacs : t -> string
(** The certified formula in DIMACS CNF: the bit-blasted clauses plus one
    unit clause per assumption, so the formula standalone-encodes
    [cnf ∧ assumptions] for external tools. *)
