(* Independent forward DRUP checker. Deliberately shares no code with
   Sat.Solver: plain DIMACS integers, its own two-watched-literal loop, no
   conflict analysis, no heuristics. Assignments made while loading the
   CNF, the assumptions, and accepted lemmas are persistent (they are
   unit-propagation consequences and the database only grows); assignments
   made inside a RUP check are rolled back to a trail mark. *)

type step = Learn of int list | Delete of int list

type clause = { lits : int array; mutable alive : bool }

type db = {
  n_vars : int;
  value : int array;  (* index 1..n_vars: 0 unassigned, 1 true, -1 false *)
  trail : int array;
  mutable trail_len : int;
  mutable qhead : int;
  watches : clause list array;  (* indexed by lit_index *)
  index : (int list, clause list ref) Hashtbl.t;
      (* normalized literal list -> clauses with those literals *)
  mutable contradiction : bool;
}

exception Fail of string

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

let create n_vars =
  {
    n_vars;
    value = Array.make (n_vars + 1) 0;
    trail = Array.make (n_vars + 1) 0;
    trail_len = 0;
    qhead = 0;
    watches = Array.make (2 * (n_vars + 1)) [];
    index = Hashtbl.create 64;
    contradiction = false;
  }

let lit_value db l = if l > 0 then db.value.(l) else -db.value.(-l)

(* Make [l] true and push it on the trail (caller ensures it is unassigned). *)
let assign db l =
  db.value.(abs l) <- (if l > 0 then 1 else -1);
  db.trail.(db.trail_len) <- l;
  db.trail_len <- db.trail_len + 1

(* Unit-propagate from the queue head to fixpoint. Returns [true] on
   conflict (some clause with every literal false). *)
let propagate db =
  let conflict = ref false in
  while (not !conflict) && db.qhead < db.trail_len do
    let p = db.trail.(db.qhead) in
    db.qhead <- db.qhead + 1;
    let fl = -p in
    let wi = lit_index fl in
    let ws = db.watches.(wi) in
    db.watches.(wi) <- [];
    let rec visit kept = function
      | [] -> db.watches.(wi) <- kept
      | c :: rest ->
          if not c.alive then visit kept rest
          else begin
            if c.lits.(0) = fl then begin
              c.lits.(0) <- c.lits.(1);
              c.lits.(1) <- fl
            end;
            if lit_value db c.lits.(0) = 1 then visit (c :: kept) rest
            else begin
              let n = Array.length c.lits in
              let k = ref 2 in
              while !k < n && lit_value db c.lits.(!k) = -1 do
                incr k
              done;
              if !k < n then begin
                (* Found a non-false replacement watch. *)
                c.lits.(1) <- c.lits.(!k);
                c.lits.(!k) <- fl;
                let j = lit_index c.lits.(1) in
                db.watches.(j) <- c :: db.watches.(j);
                visit kept rest
              end
              else if lit_value db c.lits.(0) = -1 then begin
                conflict := true;
                (* Keep every watcher, including the unvisited tail. *)
                db.watches.(wi) <- (c :: kept) @ rest
              end
              else begin
                assign db c.lits.(0);
                visit (c :: kept) rest
              end
            end
          end
    in
    visit [] ws
  done;
  !conflict

let undo_to db mark =
  while db.trail_len > mark do
    db.trail_len <- db.trail_len - 1;
    db.value.(abs db.trail.(db.trail_len)) <- 0
  done;
  db.qhead <- mark

(* Sort literals by variable then sign, drop duplicates; [None] marks a
   tautology. The result doubles as the deletion-index key. *)
let norm lits =
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (abs a) (abs b) in
        if c <> 0 then c else compare a b)
      lits
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | [ x ] -> Some (List.rev (x :: acc))
    | x :: (y :: _ as rest) ->
        if x = y then go acc rest
        else if x = -y then None
        else go (x :: acc) rest
  in
  go [] sorted

let register db key c =
  match Hashtbl.find_opt db.index key with
  | Some cell -> cell := c :: !cell
  | None -> Hashtbl.add db.index key (ref [ c ])

(* Add a clause to the database under the current persistent assignment:
   tautologies are inert, a falsified clause is a contradiction, a unit is
   assigned and propagated, anything wider gets two non-false watches. *)
let add_clause_db db lits =
  match norm lits with
  | None -> ()
  | Some [] -> db.contradiction <- true
  | Some ulits ->
      let c = { lits = Array.of_list ulits; alive = true } in
      register db ulits c;
      if not db.contradiction then begin
        let arr = c.lits in
        let n = Array.length arr in
        let nf = ref 0 in
        (try
           for i = 0 to n - 1 do
             if lit_value db arr.(i) <> -1 then begin
               let t = arr.(!nf) in
               arr.(!nf) <- arr.(i);
               arr.(i) <- t;
               incr nf;
               if !nf >= 2 then raise Exit
             end
           done
         with Exit -> ());
        if !nf = 0 then db.contradiction <- true
        else if !nf = 1 then begin
          if lit_value db arr.(0) = 0 then begin
            assign db arr.(0);
            if propagate db then db.contradiction <- true
          end
          (* else arr.(0) is true: permanently satisfied, nothing to watch *)
        end
        else begin
          let i0 = lit_index arr.(0) and i1 = lit_index arr.(1) in
          db.watches.(i0) <- c :: db.watches.(i0);
          db.watches.(i1) <- c :: db.watches.(i1)
        end
      end

(* Reverse unit propagation: assert the negation of every literal of the
   candidate clause, propagate, and demand a conflict. Leaves the
   database exactly as found. *)
let rup_holds db lits =
  let mark = db.trail_len in
  let immediate = ref false in
  (try
     List.iter
       (fun l ->
         match lit_value db l with
         | 1 ->
             immediate := true;
             raise Exit
         | -1 -> ()
         | _ -> assign db (-l))
       lits
   with Exit -> ());
  let ok = !immediate || propagate db in
  undo_to db mark;
  ok

let delete_clause db lits =
  match norm lits with
  | None | Some [] -> ()
  | Some key -> (
      match Hashtbl.find_opt db.index key with
      | None -> raise (Fail "deletion of a clause never added")
      | Some cell -> (
          match List.find_opt (fun c -> c.alive) !cell with
          | None -> raise (Fail "deletion of an already-deleted clause")
          | Some c ->
              let non_false =
                Array.fold_left
                  (fun acc l -> if lit_value db l <> -1 then acc + 1 else acc)
                  0 c.lits
              in
              (* A clause with at most one non-false literal may be the
                 sole support of a propagated unit; solvers never delete
                 such reason clauses, and skipping the deletion keeps our
                 database a superset of theirs, which is sound (unit
                 propagation is monotone in the clause set). *)
              if non_false > 1 then c.alive <- false))

let lits_to_string lits =
  "{" ^ String.concat " " (List.map string_of_int lits) ^ "}"

let check_lits db where lits =
  List.iter
    (fun l ->
      if l = 0 || abs l > db.n_vars then
        raise (Fail (Printf.sprintf "%s: literal %d out of range" where l)))
    lits

let check_unsat ~n_vars ~cnf ~assumptions ~proof =
  if n_vars < 0 then Error "negative n_vars"
  else
    let db = create n_vars in
    try
      List.iteri
        (fun i lits ->
          check_lits db (Printf.sprintf "input clause %d" i) lits;
          add_clause_db db lits)
        cnf;
      check_lits db "assumptions" assumptions;
      List.iter
        (fun l ->
          if not db.contradiction then
            match lit_value db l with
            | 1 -> ()
            | -1 -> db.contradiction <- true
            | _ ->
                assign db l;
                if propagate db then db.contradiction <- true)
        assumptions;
      List.iteri
        (fun i step ->
          if not db.contradiction then
            (* Once the empty clause is derived every later step follows
               trivially; the verdict is already sealed. *)
            match step with
            | Learn [] ->
                raise
                  (Fail
                     (Printf.sprintf
                        "step %d: empty clause not derivable by unit \
                         propagation"
                        i))
            | Learn lits ->
                check_lits db (Printf.sprintf "step %d" i) lits;
                if rup_holds db lits then add_clause_db db lits
                else
                  raise
                    (Fail
                       (Printf.sprintf "step %d: clause %s fails the RUP check"
                          i (lits_to_string lits)))
            | Delete lits ->
                check_lits db (Printf.sprintf "step %d" i) lits;
                (try delete_clause db lits
                 with Fail msg ->
                   raise
                     (Fail
                        (Printf.sprintf "step %d: %s %s" i msg
                           (lits_to_string lits)))))
        proof;
      if db.contradiction then Ok ()
      else Error "proof does not derive the empty clause"
    with Fail msg -> Error msg

let model_check ~n_vars ~cnf ~assumptions ~model =
  if n_vars < 0 then Error "negative n_vars"
  else if Array.length model < n_vars then
    Error
      (Printf.sprintf "model has %d variables, formula needs %d"
         (Array.length model) n_vars)
  else
    let lit_true l = if l > 0 then model.(l - 1) else not model.(-l - 1) in
    let check where l =
      if l = 0 || abs l > n_vars then
        raise (Fail (Printf.sprintf "%s: literal %d out of range" where l))
    in
    try
      List.iteri
        (fun i lits ->
          List.iter (check (Printf.sprintf "clause %d" i)) lits;
          if not (List.exists lit_true lits) then
            raise
              (Fail
                 (Printf.sprintf "clause %d %s is falsified by the model" i
                    (lits_to_string lits))))
        cnf;
      List.iter
        (fun l ->
          check "assumptions" l;
          if not (lit_true l) then
            raise
              (Fail (Printf.sprintf "assumption %d is falsified by the model" l)))
        assumptions;
      Ok ()
    with Fail msg -> Error msg
