type cnf = { n_vars : int; clauses : int list list }

let to_string { n_vars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" n_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

exception Stop

let of_string text =
  let tokens_of_line line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.concat_map (String.split_on_char '\r')
    |> List.filter (fun s -> s <> "")
  in
  let lines = String.split_on_char '\n' text in
  let n_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> failwith ("Dimacs: bad token " ^ tok)
    | Some 0 ->
        clauses := List.rev !current :: !clauses;
        current := []
    | Some l -> current := l :: !current
  in
  let handle_line line =
    match tokens_of_line line with
    | [] -> () (* blank lines are fine anywhere *)
    | tok :: _ when tok.[0] = 'c' -> () (* comments, before or after the header *)
    | tok :: _ when tok.[0] = '%' ->
        (* SATLIB/cnfgen terminator: '%' ends the clause section; whatever
           follows (conventionally a lone '0' line) is ignored. *)
        raise Stop
    | "p" :: "cnf" :: v :: _ -> (
        match int_of_string_opt v with
        | Some n -> n_vars := n
        | None -> failwith ("Dimacs: bad variable count " ^ v))
    | toks -> List.iter handle_token toks
  in
  (try List.iter handle_line lines with Stop -> ());
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { n_vars = !n_vars; clauses = List.rev !clauses }

let load_into solver { n_vars; clauses } =
  let vars = Array.init n_vars (fun _ -> Solver.new_var solver) in
  let lit_of n =
    let v = abs n - 1 in
    if v >= n_vars then failwith "Dimacs.load_into: literal out of range";
    Lit.make vars.(v) (n > 0)
  in
  List.iter (fun clause -> Solver.add_clause solver (List.map lit_of clause)) clauses
