(** Bounded lock-free mailbox for sharing learnt clauses between
    portfolio solvers.

    A fixed ring of atomic slots: {!publish} claims a position with a
    fetch-and-add and overwrites whatever was there, so writers never
    block and memory stays bounded whatever the publish rate. Each
    consumer holds its own {!reader} cursor and {!drain}s messages
    published since its last visit, skipping its own.

    Delivery is deliberately best-effort: a clause can be lost (ring
    wrapped before the reader drained) or occasionally delivered twice
    (a writer lapped the reader mid-drain). Consumers must treat every
    message as an unverified hint — the portfolio imports clauses
    through the solver's reverse-unit-propagation check, which makes
    losses and duplicates harmless and keeps DRUP traces sound. *)

type t

val create : slots:int -> t
(** Ring with [slots] positions. Raises [Invalid_argument] if < 1. *)

val capacity : t -> int

val publish : t -> src:int -> Lit.t list -> unit
(** Never blocks; may overwrite the oldest undelivered message. [src]
    identifies the publisher so its own reader skips the message. *)

val published : t -> int
(** Total messages ever published (including overwritten ones). *)

type reader

val reader : t -> reader
(** A fresh consumer cursor starting at the current head. Each portfolio
    worker owns exactly one reader; readers are not thread-safe and must
    stay on their worker's domain. *)

val drain : reader -> self:int -> (Lit.t list -> unit) -> unit
(** Deliver messages published since the last drain whose [src] differs
    from [self], oldest first, then advance the cursor. *)
