(** CDCL SAT solver.

    A MiniSat-style conflict-driven clause-learning solver: two-watched-
    literal propagation, first-UIP conflict analysis, VSIDS decision
    heuristic with phase saving, Luby restarts and activity-based learnt-
    clause deletion. It is the decision procedure underneath the
    bit-blasted model-checking queries (the role nuXmv's SAT engine plays
    in the paper).

    Typical use is incremental: allocate variables, add clauses, [solve],
    read the model, add blocking clauses, [solve] again. *)

type t

type result = Sat | Unsat | Unknown

val create : unit -> t

val new_var : t -> int
(** Fresh variable index (0-based). *)

val nvars : t -> int
val nclauses : t -> int
(** Problem clauses currently alive (excludes learnt clauses). *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause over existing variables. Performs level-0 simplification:
    duplicate literals are merged, tautologies dropped, false literals
    removed. Adding the empty clause (or a unit contradicting a previous
    level-0 implication) makes the instance permanently unsatisfiable. *)

val set_priority : t -> int list -> unit
(** Variables to branch on before the VSIDS heap, in the given order. For
    circuit-shaped CNF (bit-blasted formulas) deciding the circuit inputs
    first lets unit propagation evaluate the whole circuit, which speeds
    up exhaustive (UNSAT) proofs dramatically. Replaces any previous
    priority list. *)

type proof_step =
  | P_input of Lit.t list
      (** An original problem clause, exactly as passed to [add_clause]
          (before level-0 simplification). *)
  | P_learn of Lit.t list
      (** A clause derivable from the current database by reverse unit
          propagation: every learnt clause, plus [P_learn []] when the
          database itself becomes contradictory at level 0. *)
  | P_delete of Lit.t list  (** A learnt clause dropped by [reduce_db]. *)
  | P_empty of Lit.t list
      (** One per [Unsat] answer of [solve], carrying the assumptions the
          refutation was derived under ([[]] for an unconditional one).
          Marks a point in the event stream where the logged clauses plus
          those assumption units propagate to the empty clause. *)

val set_proof_sink : t -> (proof_step -> unit) option -> unit
(** Attach (or detach) a DRUP proof sink. The sink observes every input
    clause, learnt clause, learnt-clause deletion and [Unsat] conclusion,
    in order, which is enough for an independent checker to re-derive each
    [Unsat] answer by reverse unit propagation (see {!Cert.Rup}). When no
    sink is attached the per-event cost is one field load and branch. *)

val set_diversification : t -> seed:int -> unit
(** Configure this solver as one member of a portfolio. [seed = 0]
    restores the pristine deterministic defaults. Any other seed
    deterministically scatters the saved phases over the existing
    variables, staggers the Luby restart base (0.5x/1x/2x/4x by seed)
    and makes 1 decision in 32 pick a pseudo-random phase instead of
    the saved one — enough for portfolio members to explore different
    parts of the search space while each member stays reproducible for
    its seed. Call before {!solve}; variables created afterwards keep
    their default phase. *)

val set_clause_hooks :
  t ->
  ?export:(Lit.t list -> unit) ->
  ?export_max_len:int ->
  ?import:(unit -> Lit.t list list) ->
  unit ->
  unit
(** Portfolio clause sharing. [export] observes every learnt clause of
    at most [export_max_len] literals (default 8) the moment it is
    learnt — it runs on the solving domain and must be wait-free (the
    portfolio passes {!Mailbox.publish}). [import] is drained at solve
    entry and at every restart boundary; each returned clause is
    {e verified on import}: the solver re-derives it locally by reverse
    unit propagation and silently drops it if the derivation fails, so
    a foreign clause can never unsound the solver and every adopted
    clause is logged to the proof sink as a regular RUP lemma — DRUP
    traces stay independently checkable. Hooks survive across [solve]
    calls; pass no arguments to clear them. *)

val set_max_learnts : t -> int -> unit
(** Override the learnt-clause limit that triggers [reduce_db] (normally
    managed internally, starting at 3000 and growing geometrically). A
    small limit forces frequent deletions — useful to exercise proof
    logging under clause deletion. Raises [Invalid_argument] if [n < 1]. *)

val solve :
  ?assumptions:Lit.t list -> ?max_conflicts:int -> ?budget:Resil.Budget.t ->
  t -> result
(** Searches for a model extending the assumptions. [Unknown] is returned
    only when [max_conflicts] is set and exhausted, or when [budget] runs
    out — the budget's deadline, memory watermark and cancellation token
    are polled cooperatively every 64 conflicts (its conflict cap
    composes with [max_conflicts]; the tighter wins), and an
    [Out_of_memory] raised mid-search is caught and reported the same
    way. The solver remains usable after any outcome — including a
    cancelled or exhausted one (the trail is rewound to level 0); after
    [Unsat] under assumptions it can still be satisfiable under others.
    See {!last_interrupt} for why an [Unknown] stopped. *)

val last_interrupt : t -> Resil.Budget.reason option
(** Why the most recent {!solve} returned [Unknown] ([Conflicts] for a
    plain [max_conflicts] exhaustion); [None] after [Sat]/[Unsat].
    Reset at every [solve] entry. *)

val value : t -> Lit.t -> bool
(** Value of a literal in the last model. Only meaningful after [solve]
    returned [Sat]; unassigned variables read as [false]. *)

val model : t -> bool array
(** Per-variable values of the last model (length [nvars]). *)

val okay : t -> bool
(** [false] once the clause set is unsatisfiable at level 0. *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_clauses : int;
}

val stats : t -> stats
