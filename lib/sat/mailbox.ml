(* Bounded lock-free clause mailbox: a ring of atomic slots written at a
   fetch-and-add cursor, read by per-consumer cursors. Publishing never
   blocks and never allocates beyond the message itself; a slow reader
   simply loses the clauses that were overwritten before it drained. All
   losses are harmless — consumers treat the mailbox as a best-effort
   hint stream and verify every clause before using it. *)

type message = { src : int; lits : Lit.t list }

type t = {
  slots : message option Atomic.t array;
  head : int Atomic.t;       (* next write position (monotonic) *)
  published : int Atomic.t;  (* total publish calls, for observability *)
}

let create ~slots =
  if slots < 1 then invalid_arg "Mailbox.create";
  {
    slots = Array.init slots (fun _ -> Atomic.make None);
    head = Atomic.make 0;
    published = Atomic.make 0;
  }

let capacity t = Array.length t.slots

let publish t ~src lits =
  let i = Atomic.fetch_and_add t.head 1 in
  Atomic.set t.slots.(i mod Array.length t.slots) (Some { src; lits });
  Atomic.incr t.published

let published t = Atomic.get t.published

type reader = { mb : t; mutable cursor : int }

let reader t = { mb = t; cursor = Atomic.get t.head }

(* Deliver every message published since the last drain (bounded by the
   ring capacity — older ones were overwritten), skipping the reader's
   own. A racing writer can overwrite a slot mid-drain, in which case
   the reader sees a newer message early and may see it again on the
   next drain; duplicates are harmless for verify-on-import consumers. *)
let drain r ~self f =
  let h = Atomic.get r.mb.head in
  let n = Array.length r.mb.slots in
  let start = max r.cursor (h - n) in
  for i = start to h - 1 do
    match Atomic.get r.mb.slots.(i mod n) with
    | Some m when m.src <> self -> f m.lits
    | Some _ | None -> ()
  done;
  r.cursor <- h
