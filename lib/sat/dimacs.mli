(** DIMACS CNF input/output, for debugging queries against external
    solvers and for the SAT test corpus. *)

type cnf = { n_vars : int; clauses : int list list }
(** Clauses as DIMACS integers (1-based, sign = polarity). *)

val to_string : cnf -> string
val of_string : string -> cnf
(** Parses the standard format plus the common dialect quirks: blank
    lines and 'c' comment lines anywhere (also after the header), tokens
    separated by spaces, tabs or CR, clauses spanning lines, a missing
    final terminating 0, and the SATLIB/cnfgen trailer (a '%' line ends
    the clause section; anything after it is ignored). Raises [Failure]
    on malformed input. *)

val load_into : Solver.t -> cnf -> unit
(** Allocates [n_vars] fresh variables in the solver and adds every
    clause. Intended for a freshly created solver. *)
