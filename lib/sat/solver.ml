(* MiniSat-style CDCL. Variable state lives in parallel arrays indexed by
   variable; watch lists are indexed by literal. The two watched literals
   of every clause are kept in positions 0 and 1 of its literal array. *)

type clause = {
  mutable lits : Lit.t array;
  learnt : bool;
  mutable activity : float;
  mutable deleted : bool;
}

type result = Sat | Unsat | Unknown

(* DRUP proof events. The sink sees the exact original clauses (before
   level-0 simplification), every learnt clause, every deletion, and one
   [P_empty] per Unsat answer carrying the assumptions it was derived
   under. With no sink attached the only cost per event site is a single
   mutable-field load and branch. *)
type proof_step =
  | P_input of Lit.t list
  | P_learn of Lit.t list
  | P_delete of Lit.t list
  | P_empty of Lit.t list

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_clauses : int;
}

type t = {
  mutable nvars : int;
  mutable assigns : int array;          (* 0 unknown, 1 true, -1 false *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array;        (* saved phase *)
  mutable seen : bool array;
  mutable watches : clause Veca.t array; (* indexed by literal *)
  clauses : clause Veca.t;
  learnts : clause Veca.t;
  trail : Lit.t Veca.t;
  trail_lim : int Veca.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable heap : int array;
  mutable heap_len : int;
  mutable heap_index : int array;       (* var -> heap position or -1 *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable max_learnts : float;
  mutable priority : int array;
  mutable proof_sink : (proof_step -> unit) option;
  mutable stop_reason : Resil.Budget.reason option;
      (* why the last [solve] returned Unknown *)
  mutable rnd : int64;           (* xorshift state; 0 = no diversification *)
  mutable restart_mult : float;  (* multiplier on the Luby restart base *)
  mutable share_out : (Lit.t list -> unit) option;
  mutable share_out_max_len : int;
  mutable share_in : (unit -> Lit.t list list) option;
}

let var_decay = 1. /. 0.95
let clause_decay = 1. /. 0.999

(* Observability handles (created once at module init; recording is a
   no-op until the registry is enabled). Search counters are kept in the
   solver's own mutable fields on the hot path and pushed to the registry
   as per-solve deltas, so the disabled cost inside search is zero and
   the enabled cost is a handful of atomic adds per [solve]. Learnt-clause
   sizes are the exception: they are only visible at learn time. *)
let m_solves = Obs.Metrics.counter "sat.solves"

let m_conflicts = Obs.Metrics.counter "sat.conflicts"

let m_decisions = Obs.Metrics.counter "sat.decisions"

let m_propagations = Obs.Metrics.counter "sat.propagations"

let m_restarts = Obs.Metrics.counter "sat.restarts"

let h_learnt_len =
  Obs.Metrics.histogram "sat.learnt_clause_len"
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. |]

let h_conflicts_per_solve =
  Obs.Metrics.histogram "sat.conflicts_per_solve"
    ~buckets:[| 0.; 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384.; 65536. |]

(* Portfolio clause sharing. *)
let m_exported = Obs.Metrics.counter "sat.shared.exported"

let m_imported = Obs.Metrics.counter "sat.shared.imported"

let m_import_rejected = Obs.Metrics.counter "sat.shared.rejected"

let create () =
  {
    nvars = 0;
    assigns = [||];
    level = [||];
    reason = [||];
    activity = [||];
    polarity = [||];
    seen = [||];
    watches = [||];
    clauses = Veca.create ();
    learnts = Veca.create ();
    trail = Veca.create ();
    trail_lim = Veca.create ();
    qhead = 0;
    var_inc = 1.;
    cla_inc = 1.;
    ok = true;
    heap = [||];
    heap_len = 0;
    heap_index = [||];
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
    max_learnts = 3000.;
    priority = [||];
    proof_sink = None;
    stop_reason = None;
    rnd = 0L;
    restart_mult = 1.;
    share_out = None;
    share_out_max_len = 8;
    share_in = None;
  }

let set_proof_sink s sink = s.proof_sink <- sink

(* ---------- portfolio diversification ---------- *)

(* xorshift64*: tiny, deterministic per seed, and entirely local to the
   solver so two solvers with the same seed follow the same search. *)
let next_rand s =
  let x = s.rnd in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  s.rnd <- x;
  Int64.to_int (Int64.shift_right_logical x 16)

let set_diversification s ~seed =
  if seed = 0 then begin
    s.rnd <- 0L;
    s.restart_mult <- 1.
  end
  else begin
    s.rnd <- Int64.add 0x9E3779B97F4A7C15L (Int64.of_int seed);
    ignore (next_rand s);
    (* Scatter the saved phases so each seed explores a different corner
       of the assignment space first. *)
    for v = 0 to s.nvars - 1 do
      s.polarity.(v) <- next_rand s land 1 = 1
    done;
    (* Stagger restart schedules across seeds: 0.5x, 1x, 2x or 4x the
       Luby base. *)
    s.restart_mult <- [| 0.5; 1.; 2.; 4. |].(seed land 3)
  end

let set_clause_hooks s ?export ?(export_max_len = 8) ?import () =
  if export_max_len < 1 then invalid_arg "Solver.set_clause_hooks";
  s.share_out <- export;
  s.share_out_max_len <- export_max_len;
  s.share_in <- import

let set_max_learnts s n =
  if n < 1 then invalid_arg "Solver.set_max_learnts";
  s.max_learnts <- float_of_int n

let nvars s = s.nvars

let nclauses s = Veca.length s.clauses

let okay s = s.ok

(* ---------- variable-order heap (max-heap on activity) ---------- *)

let heap_swap s i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_index.(vi) <- j;
  s.heap_index.(vj) <- i

let heap_up s i =
  let i = ref i in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    s.activity.(s.heap.(!i)) > s.activity.(s.heap.(parent))
  do
    let parent = (!i - 1) / 2 in
    heap_swap s !i parent;
    i := parent
  done

let heap_down s i =
  let i = ref i in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
    let best = ref !i in
    if left < s.heap_len && s.activity.(s.heap.(left)) > s.activity.(s.heap.(!best))
    then best := left;
    if right < s.heap_len && s.activity.(s.heap.(right)) > s.activity.(s.heap.(!best))
    then best := right;
    if !best = !i then continue := false
    else begin
      heap_swap s !i !best;
      i := !best
    end
  done

let heap_insert s v =
  if s.heap_index.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_index.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s (s.heap_len - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_index.(v) <- -1;
  if s.heap_len > 0 then begin
    let last = s.heap.(s.heap_len) in
    s.heap.(0) <- last;
    s.heap_index.(last) <- 0;
    heap_down s 0
  end;
  v

(* ---------- variables ---------- *)

let grow_array a n default =
  let old = Array.length a in
  if n <= old then a
  else begin
    let na = Array.make (max n (max 16 (2 * old))) default in
    Array.blit a 0 na 0 old;
    na
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns <- grow_array s.assigns s.nvars 0;
  s.level <- grow_array s.level s.nvars (-1);
  s.reason <- grow_array s.reason s.nvars None;
  s.activity <- grow_array s.activity s.nvars 0.;
  s.polarity <- grow_array s.polarity s.nvars false;
  s.seen <- grow_array s.seen s.nvars false;
  s.heap <- grow_array s.heap s.nvars (-1);
  s.heap_index <- grow_array s.heap_index s.nvars (-1);
  let nlits = 2 * s.nvars in
  if Array.length s.watches < nlits then begin
    let old = Array.length s.watches in
    let nw = Array.make (max nlits (2 * max 16 old)) (Veca.create ()) in
    Array.blit s.watches 0 nw 0 old;
    for i = old to Array.length nw - 1 do
      nw.(i) <- Veca.create ()
    done;
    s.watches <- nw
  end;
  s.heap_index.(v) <- -1;
  heap_insert s v;
  v

let value_var s v = s.assigns.(v)

let value_lit s l =
  let v = s.assigns.(Lit.var l) in
  if v = 0 then 0 else if Lit.is_pos l then v else -v

let decision_level s = Veca.length s.trail_lim

(* ---------- activity ---------- *)

let var_rescale s =
  for v = 0 to s.nvars - 1 do
    s.activity.(v) <- s.activity.(v) *. 1e-100
  done;
  s.var_inc <- s.var_inc *. 1e-100

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then var_rescale s;
  if s.heap_index.(v) >= 0 then heap_up s s.heap_index.(v)

let var_decay_activity s = s.var_inc <- s.var_inc *. var_decay

let clause_bump s (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Veca.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let clause_decay_activity s = s.cla_inc <- s.cla_inc *. clause_decay

(* ---------- assignment trail ---------- *)

let enqueue s l reason =
  let v = Lit.var l in
  assert (s.assigns.(v) = 0);
  s.assigns.(v) <- (if Lit.is_pos l then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Veca.push s.trail l

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Veca.get s.trail_lim lvl in
    for i = Veca.length s.trail - 1 downto bound do
      let l = Veca.get s.trail i in
      let v = Lit.var l in
      s.assigns.(v) <- 0;
      s.polarity.(v) <- Lit.is_pos l;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    Veca.shrink s.trail bound;
    Veca.shrink s.trail_lim lvl;
    s.qhead <- bound
  end

(* ---------- propagation ---------- *)

let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < Veca.length s.trail do
    let p = Veca.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.n_propagations <- s.n_propagations + 1;
    let false_lit = Lit.neg p in
    let ws = s.watches.(Lit.to_index false_lit) in
    let n = Veca.length ws in
    let i = ref 0 and j = ref 0 in
    while !i < n do
      let c = Veca.get ws !i in
      incr i;
      if not c.deleted then begin
        (* Normalise: the watched false literal sits at position 1. *)
        if Lit.equal c.lits.(0) false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        let first = c.lits.(0) in
        if value_lit s first = 1 then begin
          Veca.set ws !j c;
          incr j
        end
        else begin
          let len = Array.length c.lits in
          let rec find k =
            if k >= len then -1
            else if value_lit s c.lits.(k) <> -1 then k
            else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            c.lits.(1) <- c.lits.(k);
            c.lits.(k) <- false_lit;
            Veca.push s.watches.(Lit.to_index c.lits.(1)) c
          end
          else begin
            (* Unit or conflicting clause; keep the watch either way. *)
            Veca.set ws !j c;
            incr j;
            if value_lit s first = -1 then begin
              while !i < n do
                Veca.set ws !j (Veca.get ws !i);
                incr j;
                incr i
              done;
              s.qhead <- Veca.length s.trail;
              conflict := Some c
            end
            else enqueue s first (Some c)
          end
        end
      end
    done;
    Veca.shrink ws !j
  done;
  !conflict

(* ---------- clause construction ---------- *)

let watch_clause s c =
  Veca.push s.watches.(Lit.to_index c.lits.(0)) c;
  Veca.push s.watches.(Lit.to_index c.lits.(1)) c

let check_var_exists s l =
  if Lit.var l >= s.nvars then invalid_arg "Solver.add_clause: unknown variable"

let add_clause s lits =
  List.iter (check_var_exists s) lits;
  if s.ok then begin
    (* The proof sink records the clause exactly as given: level-0
       simplification below is sound for the solver but the checker works
       from the original CNF (simplified clauses stay RUP-derivable from
       it, so learnt lemmas check out either way). *)
    (match s.proof_sink with None -> () | Some f -> f (P_input lits));
    (* Incremental use adds clauses after a Sat answer: drop the model's
       decisions first, then simplify at level 0. *)
    cancel_until s 0;
    (* Level-0 simplification. *)
    let sorted = List.sort_uniq Lit.compare lits in
    let tautology =
      List.exists (fun l -> List.exists (Lit.equal (Lit.neg l)) sorted) sorted
    in
    let alive = List.filter (fun l -> value_lit s l <> -1) sorted in
    let satisfied = List.exists (fun l -> value_lit s l = 1) alive in
    if not (tautology || satisfied) then
      match alive with
      | [] ->
          s.ok <- false;
          (match s.proof_sink with None -> () | Some f -> f (P_learn []))
      | [ l ] ->
          enqueue s l None;
          if propagate s <> None then begin
            s.ok <- false;
            match s.proof_sink with None -> () | Some f -> f (P_learn [])
          end
      | _ :: _ :: _ ->
          let c =
            {
              lits = Array.of_list alive;
              learnt = false;
              activity = 0.;
              deleted = false;
            }
          in
          Veca.push s.clauses c;
          watch_clause s c
  end

(* ---------- conflict analysis (first UIP) ---------- *)

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref None in
  let confl = ref (Some confl) in
  let idx = ref (Veca.length s.trail - 1) in
  let btlevel = ref 0 in
  let to_clear = ref [] in
  let stop = ref false in
  while not !stop do
    let c = match !confl with Some c -> c | None -> assert false in
    if c.learnt then clause_bump s c;
    let start = match !p with None -> 0 | Some _ -> 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = Lit.var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        var_bump s v;
        s.seen.(v) <- true;
        to_clear := v :: !to_clear;
        if s.level.(v) >= decision_level s then incr path
        else begin
          learnt := q :: !learnt;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* Walk the trail back to the next marked literal. *)
    while not s.seen.(Lit.var (Veca.get s.trail !idx)) do
      decr idx
    done;
    let pl = Veca.get s.trail !idx in
    decr idx;
    s.seen.(Lit.var pl) <- false;
    p := Some pl;
    confl := s.reason.(Lit.var pl);
    decr path;
    if !path = 0 then stop := true
  done;
  List.iter (fun v -> s.seen.(v) <- false) !to_clear;
  let asserting = Lit.neg (match !p with Some pl -> pl | None -> assert false) in
  (asserting :: !learnt, !btlevel)

let record_learnt s lits btlevel =
  (match s.proof_sink with None -> () | Some f -> f (P_learn lits));
  (match s.share_out with
  | Some f when List.compare_length_with lits s.share_out_max_len <= 0 ->
      Obs.Metrics.incr m_exported;
      f lits
  | Some _ | None -> ());
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_learnt_len (float_of_int (List.length lits));
  match lits with
  | [] -> assert false
  | [ l ] ->
      cancel_until s 0;
      enqueue s l None
  | asserting :: rest ->
      cancel_until s btlevel;
      let arr = Array.of_list (asserting :: rest) in
      (* Position 1 must hold a literal from the backtrack level so the
         watch invariant survives future backtracking. *)
      let best = ref 1 in
      for k = 2 to Array.length arr - 1 do
        if s.level.(Lit.var arr.(k)) > s.level.(Lit.var arr.(!best)) then best := k
      done;
      let tmp = arr.(1) in
      arr.(1) <- arr.(!best);
      arr.(!best) <- tmp;
      let c = { lits = arr; learnt = true; activity = 0.; deleted = false } in
      Veca.push s.learnts c;
      watch_clause s c;
      clause_bump s c;
      enqueue s asserting (Some c)

(* ---------- clause import (verify-on-import) ---------- *)

(* A clause arriving from another solver is only a hint: its literals
   were numbered by a different compilation and carry no local proof.
   Before adopting it we re-derive it locally by reverse unit
   propagation — assume the negation on a scratch decision level,
   propagate, and demand a conflict. A clause that passes is a logical
   consequence of THIS solver's database whatever it meant to the
   sender, so sharing is sound by construction (a misrouted clause is
   simply rejected), and logging it as [P_learn] keeps the DRUP trace
   checkable by the independent RUP checker. Must be called at decision
   level 0, between searches. *)
let import_clause s lits =
  if
    s.ok && decision_level s = 0 && lits <> []
    && List.for_all (fun l -> Lit.var l < s.nvars) lits
  then begin
    let sorted = List.sort_uniq Lit.compare lits in
    let tautology =
      List.exists (fun l -> List.exists (Lit.equal (Lit.neg l)) sorted) sorted
    in
    let satisfied = List.exists (fun l -> value_lit s l = 1) sorted in
    let unassigned = List.filter (fun l -> value_lit s l = 0) sorted in
    if tautology || satisfied then ()
    else if unassigned = [] then
      (* Every literal is already false at level 0: the negation
         propagates no further, so the clause is not RUP here. *)
      Obs.Metrics.incr m_import_rejected
    else begin
      Veca.push s.trail_lim (Veca.length s.trail);
      List.iter (fun l -> enqueue s (Lit.neg l) None) unassigned;
      let confl = propagate s in
      cancel_until s 0;
      match confl with
      | None -> Obs.Metrics.incr m_import_rejected
      | Some _ -> (
          (match s.proof_sink with None -> () | Some f -> f (P_learn sorted));
          Obs.Metrics.incr m_imported;
          match unassigned with
          | [] -> assert false
          | [ l ] -> (
              (* Simplifies to a unit at level 0 (the other literals are
                 level-0 false) — same handling as [add_clause]. *)
              enqueue s l None;
              if propagate s <> None then begin
                s.ok <- false;
                match s.proof_sink with None -> () | Some f -> f (P_learn [])
              end)
          | l0 :: l1 :: _ ->
              (* Watch two unassigned literals; level-0-false ones can
                 never need a watch again. *)
              let others =
                List.filter
                  (fun l -> not (Lit.equal l l0) && not (Lit.equal l l1))
                  sorted
              in
              let c =
                {
                  lits = Array.of_list (l0 :: l1 :: others);
                  learnt = true;
                  activity = 0.;
                  deleted = false;
                }
              in
              Veca.push s.learnts c;
              watch_clause s c)
    end
  end

let drain_imports s =
  match s.share_in with
  | None -> ()
  | Some g -> List.iter (import_clause s) (g ())

(* ---------- learnt-clause deletion ---------- *)

let locked s c =
  match s.reason.(Lit.var c.lits.(0)) with
  | Some r -> r == c && value_lit s c.lits.(0) = 1
  | None -> false

let reduce_db s =
  Veca.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) s.learnts;
  let n = Veca.length s.learnts in
  let limit = n / 2 in
  let kept = ref 0 in
  for k = 0 to n - 1 do
    let c = Veca.get s.learnts k in
    if k < limit && Array.length c.lits > 2 && not (locked s c) then begin
      c.deleted <- true;
      match s.proof_sink with
      | None -> ()
      | Some f -> f (P_delete (Array.to_list c.lits))
    end
    else begin
      Veca.set s.learnts !kept c;
      incr kept
    end
  done;
  Veca.shrink s.learnts !kept

(* ---------- search ---------- *)

let set_priority s vars =
  List.iter
    (fun v -> if v < 0 || v >= s.nvars then invalid_arg "Solver.set_priority")
    vars;
  s.priority <- Array.of_list vars

let pick_branch_var s =
  (* Priority variables first (circuit inputs), then VSIDS. *)
  let n = Array.length s.priority in
  let rec from_priority i =
    if i >= n then -1
    else
      let v = s.priority.(i) in
      if s.assigns.(v) = 0 then v else from_priority (i + 1)
  in
  let v = from_priority 0 in
  if v >= 0 then v
  else
    let rec loop () =
      if s.heap_len = 0 then -1
      else
        let v = heap_pop s in
        if s.assigns.(v) = 0 then v else loop ()
    in
    loop ()

let luby y x =
  (* Finite-subsequence trick from MiniSat: find the subsequence containing
     index x, then recurse into it iteratively. *)
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

let search s ~assumptions ~conflict_budget ~budget =
  let n_assumptions = List.length assumptions in
  let assumption_arr = Array.of_list assumptions in
  let budget_left = ref conflict_budget in
  let result = ref None in
  while !result = None do
    match propagate s with
    | Some confl ->
        s.n_conflicts <- s.n_conflicts + 1;
        (match !budget_left with
        | Some b -> budget_left := Some (b - 1)
        | None -> ());
        (* Cooperative budget poll every 64 conflicts: deadline, memory
           watermark and the cancellation token (the per-query conflict
           cap is metered by [budget_left] above). *)
        (match budget with
        | Some b when s.n_conflicts land 63 = 0 -> (
            match Resil.Budget.check b with
            | Some r ->
                s.stop_reason <- Some r;
                result := Some Unknown
            | None -> ())
        | Some _ | None -> ());
        if !result <> None then ()
        else if decision_level s = 0 then begin
          s.ok <- false;
          (* A conflict with no decisions refutes the clause set itself. *)
          (match s.proof_sink with None -> () | Some f -> f (P_learn []));
          result := Some Unsat
        end
        else if decision_level s <= n_assumptions then
          (* The conflict depends on the assumptions only. *)
          result := Some Unsat
        else begin
          let lits, btlevel = analyze s confl in
          record_learnt s lits btlevel;
          var_decay_activity s;
          clause_decay_activity s
        end
    | None -> (
        match !budget_left with
        | Some b when b <= 0 -> result := Some Unknown
        | Some _ | None ->
            if
              float_of_int (Veca.length s.learnts) >= s.max_learnts
              && decision_level s > n_assumptions
            then begin
              reduce_db s;
              s.max_learnts <- s.max_learnts *. 1.3
            end;
            let lvl = decision_level s in
            if lvl < n_assumptions then begin
              (* Re-establish the next assumption as a decision. *)
              let a = assumption_arr.(lvl) in
              match value_lit s a with
              | 1 -> Veca.push s.trail_lim (Veca.length s.trail)
              | -1 -> result := Some Unsat
              | _ ->
                  Veca.push s.trail_lim (Veca.length s.trail);
                  enqueue s a None
            end
            else begin
              let v = pick_branch_var s in
              if v < 0 then result := Some Sat
              else begin
                s.n_decisions <- s.n_decisions + 1;
                Veca.push s.trail_lim (Veca.length s.trail);
                (* Diversified solvers occasionally ignore the saved
                   phase (1 decision in 32) so same-activity portfolio
                   members drift apart even after their scattered
                   initial polarities converge. *)
                let pol =
                  if s.rnd <> 0L && next_rand s land 31 = 0 then
                    next_rand s land 1 = 1
                  else s.polarity.(v)
                in
                enqueue s (Lit.make v pol) None
              end
            end)
  done;
  match !result with Some r -> r | None -> assert false

let solve ?(assumptions = []) ?max_conflicts ?budget s =
  let obs = Obs.Metrics.enabled () in
  s.stop_reason <- None;
  (* The budget's conflict cap composes with [max_conflicts]: the
     tighter of the two wins. *)
  let max_conflicts =
    match Option.bind budget Resil.Budget.conflicts with
    | None -> max_conflicts
    | Some c -> (
        match max_conflicts with
        | None -> Some c
        | Some mc -> Some (min c mc))
  in
  let c0 = s.n_conflicts
  and d0 = s.n_decisions
  and p0 = s.n_propagations
  and r0 = s.n_restarts in
  let result =
    if not s.ok then Unsat
    else begin
      cancel_until s 0;
      List.iter (check_var_exists s) assumptions;
      match
        (match Option.map Resil.Budget.check budget with
        | Some (Some r) ->
            (* Already out of budget at entry (deadline passed, token
               cancelled): answer Unknown without touching the trail. *)
            s.stop_reason <- Some r;
            Unknown
        | Some None | None -> (
            Resil.Faultpoint.guard "sat.oom" Out_of_memory;
            match propagate s with
            | Some _ ->
                s.ok <- false;
                (match s.proof_sink with None -> () | Some f -> f (P_learn []));
                Unsat
            | None ->
                drain_imports s;
                let conflict_cap = Option.map (fun b -> max 1 b) max_conflicts in
                let rec restart_loop i =
                  (* Restart cadence only applies to unbounded solving; a
                     conflict budget gives a single uninterrupted search. *)
                  let per_restart =
                    match conflict_cap with
                    | Some b -> Some b
                    | None ->
                        Some (int_of_float (luby 1. i *. 256. *. s.restart_mult))
                  in
                  let r = search s ~assumptions ~conflict_budget:per_restart ~budget in
                  match (r, conflict_cap) with
                  | Unknown, None when s.stop_reason = None ->
                      s.n_restarts <- s.n_restarts + 1;
                      cancel_until s 0;
                      (* Restart boundaries are the only points where the
                         trail is at level 0 mid-solve: adopt whatever
                         the other portfolio members published since. *)
                      drain_imports s;
                      if not s.ok then Unsat else restart_loop (i + 1)
                  | (Sat | Unsat | Unknown), _ -> r
                in
                let result = if not s.ok then Unsat else restart_loop 0 in
                (match result with
                | Sat -> ()
                | Unsat | Unknown -> cancel_until s 0);
                result))
      with
      | result -> result
      | exception Out_of_memory ->
          (* Allocation failure mid-search (or the injected "sat.oom"
             fault): back out to level 0 so the session stays reusable
             and report a typed Unknown. *)
          cancel_until s 0;
          s.stop_reason <- Some Resil.Budget.Memory;
          Unknown
    end
  in
  (match result with
  | Unknown ->
      if s.stop_reason = None then s.stop_reason <- Some Resil.Budget.Conflicts;
      Option.iter
        (fun b -> Resil.Budget.record b (Option.get s.stop_reason))
        budget
  | Sat | Unsat -> ());
  (* Every Unsat answer closes its proof slice: ⊥ is reachable by unit
     propagation from the logged CNF, the logged lemmas and exactly these
     assumptions. *)
  (match result with
  | Unsat -> (
      match s.proof_sink with None -> () | Some f -> f (P_empty assumptions))
  | Sat | Unknown -> ());
  if obs then begin
    Obs.Metrics.incr m_solves;
    Obs.Metrics.add m_conflicts (s.n_conflicts - c0);
    Obs.Metrics.add m_decisions (s.n_decisions - d0);
    Obs.Metrics.add m_propagations (s.n_propagations - p0);
    Obs.Metrics.add m_restarts (s.n_restarts - r0);
    Obs.Metrics.observe h_conflicts_per_solve (float_of_int (s.n_conflicts - c0))
  end;
  result

let value s l =
  if Lit.var l >= s.nvars then invalid_arg "Solver.value: unknown variable";
  value_lit s l = 1

let model s = Array.init s.nvars (fun v -> value_var s v = 1)

let last_interrupt s = s.stop_reason

let stats s =
  {
    conflicts = s.n_conflicts;
    decisions = s.n_decisions;
    propagations = s.n_propagations;
    restarts = s.n_restarts;
    learnt_clauses = Veca.length s.learnts;
  }
