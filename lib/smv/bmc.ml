module T = Smtlite.Term

type outcome =
  | Holds_up_to of int
  | Violated of { step : int; trace : Ast.value array list }

exception Unsupported of string

(* Integer coding of domains. Enum symbols are looked up in a global
   (per-program) table; range values code as themselves. *)
type coding = {
  sym_code : (string * int) list;     (* enum symbol -> code *)
  domains : (string * Ast.domain) list; (* all variables *)
}

let build_coding (prog : Ast.program) =
  let all_vars = prog.Ast.state_vars @ prog.Ast.input_vars in
  let sym_code = ref [] in
  List.iter
    (fun (_, d) ->
      match d with
      | Ast.Enum syms ->
          List.iteri
            (fun i s ->
              match List.assoc_opt s !sym_code with
              | Some code when code <> i ->
                  raise
                    (Unsupported
                       (Printf.sprintf "enum symbol %s used at two positions" s))
              | Some _ -> ()
              | None -> sym_code := (s, i) :: !sym_code)
            syms
      | Ast.Range _ -> ())
    all_vars;
  { sym_code = !sym_code; domains = all_vars }

let domain_bounds = function
  | Ast.Range (lo, hi) -> (lo, hi)
  | Ast.Enum syms -> (0, List.length syms - 1)

(* Per-step variable environment: every state/input variable gets one
   smtlite variable per time step. *)
type env = {
  coding : coding;
  prog : Ast.program;
  mutable vars : ((string * int) * T.var) list;  (* (name, step) -> var *)
}

let step_var env name step =
  match List.assoc_opt (name, step) env.vars with
  | Some v -> v
  | None ->
      let domain =
        match List.assoc_opt name env.coding.domains with
        | Some d -> d
        | None -> raise (Unsupported ("unknown variable " ^ name))
      in
      let lo, hi = domain_bounds domain in
      let v = T.var ~name:(Printf.sprintf "%s@%d" name step) ~lo ~hi in
      env.vars <- ((name, step), v) :: env.vars;
      v

(* Expression translation: integers become terms, booleans formulas. *)
type value = E_int of T.term | E_bool of T.formula

let as_int = function
  | E_int t -> t
  | E_bool _ -> raise (Unsupported "integer expression expected")

let as_bool = function
  | E_bool f -> f
  | E_int _ -> raise (Unsupported "boolean expression expected")

let is_state_or_input env name =
  List.mem_assoc name env.coding.domains

let rec translate env step (e : Ast.expr) : value =
  match e with
  | Ast.Int v -> E_int (T.const v)
  | Ast.Sym "TRUE" -> E_bool T.tru
  | Ast.Sym "FALSE" -> E_bool T.fls
  | Ast.Sym s -> (
      match List.assoc_opt s env.coding.sym_code with
      | Some code -> E_int (T.const code)
      | None -> raise (Unsupported ("unknown symbol " ^ s)))
  | Ast.Var n ->
      if is_state_or_input env n then E_int (T.of_var (step_var env n step))
      else (
        match List.assoc_opt n env.prog.Ast.defines with
        | Some body -> translate env step body
        | None -> raise (Unsupported ("unknown identifier " ^ n)))
  | Ast.Add (a, b) ->
      E_int (T.add (as_int (translate env step a)) (as_int (translate env step b)))
  | Ast.Sub (a, b) ->
      E_int (T.sub (as_int (translate env step a)) (as_int (translate env step b)))
  | Ast.Mul (a, b) -> (
      let ta = as_int (translate env step a) in
      let tb = as_int (translate env step b) in
      match (ta.T.node, tb.T.node) with
      | T.Const c, _ -> E_int (T.mulc c tb)
      | _, T.Const c -> E_int (T.mulc c ta)
      | _ -> raise (Unsupported "nonlinear multiplication"))
  | Ast.Neg a -> E_int (T.neg (as_int (translate env step a)))
  | Ast.Cmp (op, a, b) ->
      let ta = as_int (translate env step a) in
      let tb = as_int (translate env step b) in
      E_bool
        (match op with
        | Ast.Lt -> T.lt ta tb
        | Ast.Le -> T.le ta tb
        | Ast.Eq -> T.eq ta tb
        | Ast.Ge -> T.ge ta tb
        | Ast.Gt -> T.gt ta tb
        | Ast.Ne -> T.not_ (T.eq ta tb))
  | Ast.Not a -> E_bool (T.not_ (as_bool (translate env step a)))
  | Ast.And (a, b) ->
      E_bool (T.and_ [ as_bool (translate env step a); as_bool (translate env step b) ])
  | Ast.Or (a, b) ->
      E_bool (T.or_ [ as_bool (translate env step a); as_bool (translate env step b) ])
  | Ast.Case arms -> translate_case env step arms
  | Ast.Set _ -> raise (Unsupported "set expression inside an expression")

and translate_case env step arms =
  (* A case is an if-then-else chain; determine int vs bool from the first
     arm's value. *)
  match arms with
  | [] -> raise (Unsupported "empty case")
  | (_, first_value) :: _ -> (
      match translate env step first_value with
      | E_int _ ->
          let rec chain = function
            | [] -> raise (Unsupported "case may fall through")
            | [ (cond, value) ] ->
                (* Last arm acts as default when its condition is TRUE;
                   otherwise fall-through is unsupported. *)
                let v = as_int (translate env step value) in
                (match cond with
                | Ast.Sym "TRUE" -> v
                | _ ->
                    (* Guarded last arm: undefined fall-through rejected. *)
                    raise (Unsupported "case may fall through"))
            | (cond, value) :: rest ->
                T.ite
                  (as_bool (translate env step cond))
                  (as_int (translate env step value))
                  (chain rest)
          in
          E_int (chain arms)
      | E_bool _ ->
          let rec chain = function
            | [] -> raise (Unsupported "case may fall through")
            | [ (cond, value) ] -> (
                let v = as_bool (translate env step value) in
                match cond with
                | Ast.Sym "TRUE" -> v
                | _ -> raise (Unsupported "case may fall through"))
            | (cond, value) :: rest ->
                let c = as_bool (translate env step cond) in
                let v = as_bool (translate env step value) in
                T.or_ [ T.and_ [ c; v ]; T.and_ [ T.not_ c; chain rest ] ]
          in
          E_bool (chain arms))

(* Constraint for one assignment: target variable at [target_step] equals
   the expression evaluated at [expr_step] (init: both 0; next: target at
   t+1, expression at t). Set right-hand sides become membership. *)
let assignment_constraint env ~target ~target_step ~expr_step rhs =
  let tv = T.of_var (step_var env target target_step) in
  match (rhs : Ast.expr) with
  | Ast.Set members ->
      T.or_
        (List.map
           (fun m -> T.eq tv (as_int (translate env expr_step m)))
           members)
  | _ -> T.eq tv (as_int (translate env expr_step rhs))

let step_constraints env step =
  (* Transition from step to step+1. *)
  List.map
    (fun (name, _) ->
      match List.assoc_opt name env.prog.Ast.next with
      | Some rhs ->
          assignment_constraint env ~target:name ~target_step:(step + 1)
            ~expr_step:step rhs
      | None ->
          (* Frozen variable. *)
          T.eq
            (T.of_var (step_var env name (step + 1)))
            (T.of_var (step_var env name step)))
    env.prog.Ast.state_vars

let init_constraints env =
  List.filter_map
    (fun (name, _) ->
      match List.assoc_opt name env.prog.Ast.init with
      | Some rhs ->
          Some (assignment_constraint env ~target:name ~target_step:0 ~expr_step:0 rhs)
      | None -> None)
    env.prog.Ast.state_vars

let decode_value domain code =
  match domain with
  | Ast.Range _ -> Ast.VInt code
  | Ast.Enum syms -> (
      match List.nth_opt syms code with
      | Some s -> Ast.VSym s
      | None -> Ast.VInt code)

let extract_trace env model ~upto =
  List.init (upto + 1) (fun step ->
      Array.of_list
        (List.map
           (fun (name, domain) ->
             let v = step_var env name step in
             decode_value domain (T.lookup model v))
           env.prog.Ast.state_vars))

let check_spec prog coding ?max_conflicts ~bound (name, spec) =
  (* One query per depth k: path constraints 0..k plus the negated spec at
     step k. A fresh compilation per depth keeps the code simple; the
     formulas are small. *)
  let rec depth k =
    if k > bound then (name, Holds_up_to bound)
    else begin
      let env = { coding; prog; vars = [] } in
      let path =
        init_constraints env
        :: List.init k (fun t -> step_constraints env t)
      in
      let negated = T.not_ (as_bool (translate env k spec)) in
      let formula = T.and_ (List.concat path @ [ negated ]) in
      match Smtlite.Solve.check ?max_conflicts formula with
      | Smtlite.Solve.Sat model ->
          (name, Violated { step = k; trace = extract_trace env model ~upto:k })
      | Smtlite.Solve.Unsat -> depth (k + 1)
      | Smtlite.Solve.Unknown _ -> (name, Holds_up_to (k - 1))
    end
  in
  depth 0

let check ?(bound = 3) ?max_conflicts prog =
  match Ast.validate prog with
  | Error msg -> Error ("invalid program: " ^ msg)
  | Ok () -> (
      match
        let coding = build_coding prog in
        List.map (check_spec prog coding ?max_conflicts ~bound) prog.Ast.invarspecs
      with
      | results -> Ok results
      | exception Unsupported msg -> Error ("unsupported: " ^ msg))
