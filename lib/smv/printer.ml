let cmp_to_string = function
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Eq -> "="
  | Ast.Ge -> ">="
  | Ast.Gt -> ">"
  | Ast.Ne -> "!="

let rec expr_to_string = function
  | Ast.Int v -> string_of_int v
  | Ast.Sym s -> s
  | Ast.Var n -> n
  | Ast.Add (a, b) -> Printf.sprintf "(%s + %s)" (expr_to_string a) (expr_to_string b)
  | Ast.Sub (a, b) -> Printf.sprintf "(%s - %s)" (expr_to_string a) (expr_to_string b)
  | Ast.Mul (a, b) -> Printf.sprintf "(%s * %s)" (expr_to_string a) (expr_to_string b)
  | Ast.Neg a -> Printf.sprintf "(- %s)" (expr_to_string a)
  | Ast.Cmp (c, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (cmp_to_string c)
        (expr_to_string b)
  | Ast.Not a -> Printf.sprintf "(!%s)" (expr_to_string a)
  | Ast.And (a, b) -> Printf.sprintf "(%s & %s)" (expr_to_string a) (expr_to_string b)
  | Ast.Or (a, b) -> Printf.sprintf "(%s | %s)" (expr_to_string a) (expr_to_string b)
  | Ast.Case arms ->
      let arm (c, v) =
        Printf.sprintf "    %s : %s;" (expr_to_string c) (expr_to_string v)
      in
      Printf.sprintf "case\n%s\n  esac" (String.concat "\n" (List.map arm arms))
  | Ast.Set es ->
      Printf.sprintf "{%s}" (String.concat ", " (List.map expr_to_string es))

let domain_to_string = function
  | Ast.Range (lo, hi) -> Printf.sprintf "%d..%d" lo hi
  | Ast.Enum syms -> Printf.sprintf "{%s}" (String.concat ", " syms)

let program_to_string (p : Ast.program) =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "MODULE main";
  if p.state_vars <> [] then begin
    line "VAR";
    List.iter
      (fun (n, d) -> line "  %s : %s;" n (domain_to_string d))
      p.state_vars
  end;
  if p.input_vars <> [] then begin
    line "IVAR";
    List.iter
      (fun (n, d) -> line "  %s : %s;" n (domain_to_string d))
      p.input_vars
  end;
  if p.defines <> [] then begin
    line "DEFINE";
    List.iter (fun (n, e) -> line "  %s := %s;" n (expr_to_string e)) p.defines
  end;
  if p.init <> [] || p.next <> [] then begin
    line "ASSIGN";
    List.iter (fun (n, e) -> line "  init(%s) := %s;" n (expr_to_string e)) p.init;
    List.iter (fun (n, e) -> line "  next(%s) := %s;" n (expr_to_string e)) p.next
  end;
  List.iter
    (fun (name, e) -> line "INVARSPEC NAME %s := %s;" name (expr_to_string e))
    p.invarspecs;
  Buffer.contents buf

let write_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (program_to_string p))
