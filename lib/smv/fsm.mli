(** Explicit-state semantics for the SMV subset.

    Breadth-first reachability over the finite state space, counting
    distinct states and distinct transition edges, and checking INVARSPEC
    properties with counterexample traces. This is the engine behind the
    paper's Fig. 3 state-space-growth experiment and the cross-check
    oracle for the SAT-based analysis; the noise state space grows as
    [(2*delta+1)^nodes], so callers must keep ranges small (the
    [state_limit] guard enforces this). *)

type state = Ast.value array
(** Values of the state variables, in declaration order. *)

type trace = state list
(** From an initial state to the reported state, inclusive. *)

type stats = { n_states : int; n_transitions : int }

type outcome = {
  stats : stats;
  violations : (string * trace) list;
      (** One entry per INVARSPEC that some reachable state violates, with
          a shortest trace to the first violation found. *)
}

type error =
  [ `Invalid of string  (** rejected by {!Ast.validate} *)
  | `Eval of string     (** ill-typed expression or evaluation failure *)
  | `State_limit of int (** more than [state_limit] states reached — a
                            resource bound, not a program error; the
                            payload is the limit that was hit *) ]

val error_to_string : error -> string

val explore : ?state_limit:int -> Ast.program -> (outcome, error) result
(** Full reachability. Fails with [Error] if the program is invalid
    (see {!Ast.validate}), an expression is ill-typed, or more than
    [state_limit] states (default 200_000) are reached — the latter as
    the distinct [`State_limit] case so callers can budget/retry rather
    than treat it as a broken model. *)

val state_to_assoc : Ast.program -> state -> (string * Ast.value) list
(** Pair each state variable name with its value. *)

val eval_in_state :
  Ast.program -> state -> Ast.expr -> (Ast.value, string) result
(** Evaluate an expression (over state variables and DEFINEs only) in a
    given state. *)
