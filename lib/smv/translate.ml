type config = {
  delta_lo : int;
  delta_hi : int;
  bias_noise : bool;
  samples : (int array * int) list;
}

let symmetric ~delta ~bias_noise ~samples =
  if delta < 0 then invalid_arg "Translate.symmetric: negative delta";
  { delta_lo = -delta; delta_hi = delta; bias_noise; samples }

let phase_var = "phase"

let noise_var i = Printf.sprintf "d%d" i

let phase_of_class c = Printf.sprintf "s_l%d" c

let sample_var = "sample"

let scale = 100

(* Sum of SMV expressions, dropping zero constants. *)
let sum_exprs exprs =
  let nonzero = List.filter (fun e -> e <> Ast.Int 0) exprs in
  match nonzero with
  | [] -> Ast.Int 0
  | e :: rest -> List.fold_left (fun acc x -> Ast.Add (acc, x)) e rest

let mul_const c e = if c = 0 then Ast.Int 0 else Ast.Mul (Ast.Int c, e)

let check (net : Nn.Qnet.t) config =
  if config.delta_lo > 0 || config.delta_hi < 0 then
    invalid_arg "Translate: noise range must contain 0";
  if Nn.Qnet.n_layers net <> 2 then
    invalid_arg "Translate: two-layer networks only";
  if
    (not (Nn.Qnet.act_equal net.Nn.Qnet.layers.(0).Nn.Qnet.act Nn.Qnet.Relu))
    || not
         (Nn.Qnet.act_equal net.Nn.Qnet.layers.(1).Nn.Qnet.act Nn.Qnet.Identity)
  then invalid_arg "Translate: ReLU hidden and identity output only";
  if config.samples = [] then invalid_arg "Translate: no samples";
  List.iter
    (fun (features, label) ->
      if Array.length features <> Nn.Qnet.in_dim net then
        invalid_arg "Translate: sample size mismatch";
      if label < 0 || label >= Nn.Qnet.out_dim net then
        invalid_arg "Translate: label out of range")
    config.samples

(* Per-sample selection: a Case over the sample IVAR, or the single value. *)
let select_per_sample n_samples per_sample =
  if n_samples = 1 then per_sample 0
  else
    Ast.Case
      (List.init n_samples (fun s ->
           let cond =
             if s = n_samples - 1 then Ast.Sym "TRUE"
             else Ast.Cmp (Ast.Eq, Ast.Var sample_var, Ast.Int s)
           in
           (cond, per_sample s)))

let network_program (net : Nn.Qnet.t) config =
  check net config;
  let n_in = Nn.Qnet.in_dim net in
  let n_out = Nn.Qnet.out_dim net in
  let n_samples = List.length config.samples in
  let samples = Array.of_list config.samples in
  (* Noise nodes: d1..dn on inputs; d0 on the bias when requested. *)
  let input_noise = List.init n_in (fun i -> noise_var (i + 1)) in
  let noise_names = (if config.bias_noise then [ noise_var 0 ] else []) @ input_noise in
  let noise_domain = Ast.Range (config.delta_lo, config.delta_hi) in
  (* DEFINE x_i := X_i*100 + X_i*d_{i+1}, selected per sample. *)
  let input_define i =
    let per_sample s =
      let xi = (fst samples.(s)).(i) in
      sum_exprs [ Ast.Int (xi * scale); mul_const xi (Ast.Var (noise_var (i + 1))) ]
    in
    (Printf.sprintf "x%d" (i + 1), select_per_sample n_samples per_sample)
  in
  let input_defines = List.init n_in input_define in
  (* Hidden layer: pre_k and relu h_k. *)
  let layer1 = net.Nn.Qnet.layers.(0) in
  let layer2 = net.Nn.Qnet.layers.(1) in
  let n_hidden = Array.length layer1.Nn.Qnet.weights in
  let pre_define k =
    let b = layer1.Nn.Qnet.bias.(k) in
    let bias_terms =
      Ast.Int (b * scale)
      ::
      (if config.bias_noise then [ mul_const b (Ast.Var (noise_var 0)) ] else [])
    in
    let weight_terms =
      List.init n_in (fun i ->
          mul_const layer1.Nn.Qnet.weights.(k).(i) (Ast.Var (Printf.sprintf "x%d" (i + 1))))
    in
    (Printf.sprintf "pre%d" (k + 1), sum_exprs (bias_terms @ weight_terms))
  in
  let hidden_define k =
    let pre = Ast.Var (Printf.sprintf "pre%d" (k + 1)) in
    ( Printf.sprintf "h%d" (k + 1),
      Ast.Case
        [ (Ast.Cmp (Ast.Gt, pre, Ast.Int 0), pre); (Ast.Sym "TRUE", Ast.Int 0) ] )
  in
  let pre_defines = List.init n_hidden pre_define in
  let hidden_defines = List.init n_hidden hidden_define in
  (* Output nodes (identity activation). *)
  let output_define j =
    let terms =
      Ast.Int (layer2.Nn.Qnet.bias.(j) * scale)
      :: List.init n_hidden (fun k ->
             mul_const layer2.Nn.Qnet.weights.(j).(k)
               (Ast.Var (Printf.sprintf "h%d" (k + 1))))
    in
    (Printf.sprintf "o%d" j, sum_exprs terms)
  in
  let output_defines = List.init n_out output_define in
  (* out := argmax with ties to the lower class index (paper's maxpool). *)
  let out_define =
    let dominates j =
      (* o_j >= o_k for every k > j, and o_j > o_k handled by order for k < j. *)
      let conds =
        List.filter_map
          (fun k ->
            if k = j then None
            else if k > j then
              Some (Ast.Cmp (Ast.Ge, Ast.Var (Printf.sprintf "o%d" j),
                             Ast.Var (Printf.sprintf "o%d" k)))
            else
              Some (Ast.Cmp (Ast.Gt, Ast.Var (Printf.sprintf "o%d" j),
                             Ast.Var (Printf.sprintf "o%d" k))))
          (List.init n_out Fun.id)
      in
      match conds with
      | [] -> Ast.Sym "TRUE"
      | c :: rest -> List.fold_left (fun acc x -> Ast.And (acc, x)) c rest
    in
    let arms =
      List.init n_out (fun j ->
          let cond = if j = n_out - 1 then Ast.Sym "TRUE" else dominates j in
          (cond, Ast.Int j))
    in
    ("out", Ast.Case arms)
  in
  (* State machine. *)
  let phases = "s_init" :: List.init n_out phase_of_class in
  let state_vars =
    (phase_var, Ast.Enum phases)
    :: List.map (fun n -> (n, noise_domain)) noise_names
  in
  let input_vars =
    if n_samples > 1 then [ (sample_var, Ast.Range (0, n_samples - 1)) ] else []
  in
  let init =
    (phase_var, Ast.Sym "s_init")
    :: List.map (fun n -> (n, Ast.Int 0)) noise_names
  in
  let noise_choice =
    Ast.Set
      (List.init
         (config.delta_hi - config.delta_lo + 1)
         (fun i -> Ast.Int (config.delta_lo + i)))
  in
  let next =
    ( phase_var,
      Ast.Case
        (List.init n_out (fun j ->
             let cond =
               if j = n_out - 1 then Ast.Sym "TRUE"
               else Ast.Cmp (Ast.Eq, Ast.Var "out", Ast.Int j)
             in
             (cond, Ast.Sym (phase_of_class j)))) )
    :: List.map (fun n -> (n, noise_choice)) noise_names
  in
  let invarspecs =
    match config.samples with
    | [ (_, label) ] ->
        [
          ( "P2_no_misclassification",
            Ast.Or
              ( Ast.Cmp (Ast.Eq, Ast.Var phase_var, Ast.Sym "s_init"),
                Ast.Cmp (Ast.Eq, Ast.Var phase_var, Ast.Sym (phase_of_class label)) ) );
        ]
    | _ -> []
  in
  {
    Ast.state_vars;
    input_vars;
    defines =
      input_defines @ pre_defines @ hidden_defines @ output_defines @ [ out_define ];
    init;
    next;
    invarspecs;
  }
