(* Hand-written lexer + recursive-descent parser for the SMV subset. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string       (* MODULE VAR IVAR DEFINE ASSIGN INVARSPEC case esac init next *)
  | LPAREN | RPAREN | LBRACE | RBRACE
  | COLON | SEMI | COMMA | DOTDOT
  | ASSIGN_OP          (* := *)
  | PLUS | MINUS | STAR
  | AMP | BAR | BANG
  | LT | LE | EQ | GE | GT | NE
  | EOF

exception Error of string

let keywords =
  [ "MODULE"; "VAR"; "IVAR"; "DEFINE"; "ASSIGN"; "INVARSPEC"; "NAME";
    "case"; "esac"; "init"; "next" ]

type lexer_state = {
  text : string;
  mutable pos : int;
  mutable line : int;
}

let fail_at st msg = raise (Error (Printf.sprintf "line %d: %s" st.line msg))

let peek_char st =
  if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st =
  (if st.pos < String.length st.text && st.text.[st.pos] = '\n' then
     st.line <- st.line + 1);
  st.pos <- st.pos + 1

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '-'
    when st.pos + 1 < String.length st.text && st.text.[st.pos + 1] = '-' ->
      (* comment to end of line *)
      while peek_char st <> None && peek_char st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some _ | None -> ()

let lex_token st =
  skip_trivia st;
  match peek_char st with
  | None -> EOF
  | Some c when is_digit c ->
      let start = st.pos in
      while (match peek_char st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      INT (int_of_string (String.sub st.text start (st.pos - start)))
  | Some c when is_ident_char c && not (is_digit c) ->
      let start = st.pos in
      while (match peek_char st with Some c -> is_ident_char c | None -> false) do
        advance st
      done;
      let word = String.sub st.text start (st.pos - start) in
      if List.mem word keywords then KW word else IDENT word
  | Some '(' -> advance st; LPAREN
  | Some ')' -> advance st; RPAREN
  | Some '{' -> advance st; LBRACE
  | Some '}' -> advance st; RBRACE
  | Some ';' -> advance st; SEMI
  | Some ',' -> advance st; COMMA
  | Some '+' -> advance st; PLUS
  | Some '*' -> advance st; STAR
  | Some '&' -> advance st; AMP
  | Some '|' -> advance st; BAR
  | Some '-' -> advance st; MINUS
  | Some '.' ->
      advance st;
      if peek_char st = Some '.' then (advance st; DOTDOT)
      else fail_at st "expected '..'"
  | Some ':' ->
      advance st;
      if peek_char st = Some '=' then (advance st; ASSIGN_OP) else COLON
  | Some '!' ->
      advance st;
      if peek_char st = Some '=' then (advance st; NE) else BANG
  | Some '<' ->
      advance st;
      if peek_char st = Some '=' then (advance st; LE) else LT
  | Some '>' ->
      advance st;
      if peek_char st = Some '=' then (advance st; GE) else GT
  | Some '=' -> advance st; EQ
  | Some c -> fail_at st (Printf.sprintf "unexpected character %C" c)

(* Parser over a token stream with one-token lookahead. *)
type parser_state = {
  lexer : lexer_state;
  mutable tok : token;
}

let make_parser text =
  let lexer = { text; pos = 0; line = 1 } in
  { lexer; tok = lex_token lexer }

let next p = p.tok <- lex_token p.lexer

let fail p msg = fail_at p.lexer msg

let expect p tok msg =
  if p.tok = tok then next p else fail p ("expected " ^ msg)

let expect_kw p kw = expect p (KW kw) kw

let parse_ident p =
  match p.tok with
  | IDENT name -> next p; name
  | _ -> fail p "expected identifier"

let parse_int p =
  match p.tok with
  | INT v -> next p; v
  | MINUS ->
      next p;
      (match p.tok with
      | INT v -> next p; -v
      | _ -> fail p "expected integer after '-'")
  | _ -> fail p "expected integer"

(* Expressions, by descending precedence:
   or_expr  := and_expr { '|' and_expr }
   and_expr := cmp_expr { '&' cmp_expr }
   cmp_expr := add_expr [ cmpop add_expr ]
   add_expr := mul_expr { ('+'|'-') mul_expr }
   mul_expr := unary { '*' unary }
   unary    := '-' unary | '!' unary | atom *)
let rec parse_or p =
  let left = parse_and p in
  if p.tok = BAR then (next p; Ast.Or (left, parse_or p)) else left

and parse_and p =
  let left = parse_cmp p in
  if p.tok = AMP then (next p; Ast.And (left, parse_and p)) else left

and parse_cmp p =
  let left = parse_add p in
  let cmp op = next p; Ast.Cmp (op, left, parse_add p) in
  match p.tok with
  | LT -> cmp Ast.Lt
  | LE -> cmp Ast.Le
  | EQ -> cmp Ast.Eq
  | GE -> cmp Ast.Ge
  | GT -> cmp Ast.Gt
  | NE -> cmp Ast.Ne
  | INT _ | IDENT _ | KW _ | LPAREN | RPAREN | LBRACE | RBRACE | COLON | SEMI
  | COMMA | DOTDOT | ASSIGN_OP | PLUS | MINUS | STAR | AMP | BAR | BANG | EOF
    -> left

and parse_add p =
  let rec loop left =
    match p.tok with
    | PLUS -> next p; loop (Ast.Add (left, parse_mul p))
    | MINUS -> next p; loop (Ast.Sub (left, parse_mul p))
    | INT _ | IDENT _ | KW _ | LPAREN | RPAREN | LBRACE | RBRACE | COLON
    | SEMI | COMMA | DOTDOT | ASSIGN_OP | STAR | AMP | BAR | BANG | LT | LE
    | EQ | GE | GT | NE | EOF -> left
  in
  loop (parse_mul p)

and parse_mul p =
  let rec loop left =
    if p.tok = STAR then (next p; loop (Ast.Mul (left, parse_unary p)))
    else left
  in
  loop (parse_unary p)

and parse_unary p =
  match p.tok with
  | MINUS -> (
      next p;
      (* Fold negative integer literals: "-3" is the literal Int (-3), not
         Neg (Int 3) — otherwise printed literals would not parse back
         structurally equal (the printer never emits Neg over a literal). *)
      match p.tok with
      | INT v -> next p; Ast.Int (-v)
      | _ -> Ast.Neg (parse_unary p))
  | BANG -> next p; Ast.Not (parse_unary p)
  | INT _ | IDENT _ | KW _ | LPAREN | RPAREN | LBRACE | RBRACE | COLON | SEMI
  | COMMA | DOTDOT | ASSIGN_OP | PLUS | STAR | AMP | BAR | LT | LE | EQ | GE
  | GT | NE | EOF -> parse_atom p

and parse_atom p =
  match p.tok with
  | INT v -> next p; Ast.Int v
  | IDENT name ->
      next p;
      if name = "TRUE" || name = "FALSE" then Ast.Sym name else Ast.Var name
  | LPAREN ->
      next p;
      let e = parse_or p in
      expect p RPAREN ")";
      e
  | LBRACE ->
      next p;
      let rec members acc =
        let e = parse_or p in
        if p.tok = COMMA then (next p; members (e :: acc))
        else (
          expect p RBRACE "}";
          List.rev (e :: acc))
      in
      Ast.Set (members [])
  | KW "case" ->
      next p;
      let rec arms acc =
        if p.tok = KW "esac" then (next p; List.rev acc)
        else begin
          let cond = parse_or p in
          expect p COLON ":";
          let value = parse_or p in
          expect p SEMI ";";
          arms ((cond, value) :: acc)
        end
      in
      Ast.Case (arms [])
  | KW kw -> fail p (Printf.sprintf "unexpected keyword %s" kw)
  | RPAREN | RBRACE | COLON | SEMI | COMMA | DOTDOT | ASSIGN_OP | PLUS
  | MINUS | STAR | AMP | BAR | BANG | LT | LE | EQ | GE | GT | NE | EOF ->
      fail p "expected expression"

(* TRUE/FALSE lexed as IDENT; map to Sym in atoms. Identifiers that are
   enum literals also appear as Var here; the FSM evaluator resolves
   unknown Var names against declared enum symbols via Sym — to keep the
   AST faithful we post-process below. *)

let parse_domain p =
  match p.tok with
  | LBRACE ->
      next p;
      let rec syms acc =
        let name =
          match p.tok with
          | IDENT n -> next p; n
          | _ -> fail p "expected enum symbol"
        in
        if p.tok = COMMA then (next p; syms (name :: acc))
        else (
          expect p RBRACE "}";
          List.rev (name :: acc))
      in
      Ast.Enum (syms [])
  | INT _ | MINUS ->
      let lo = parse_int p in
      expect p DOTDOT "..";
      let hi = parse_int p in
      Ast.Range (lo, hi)
  | _ -> fail p "expected domain"

let parse_var_decls p =
  let rec loop acc =
    match p.tok with
    | IDENT name ->
        next p;
        expect p COLON ":";
        let d = parse_domain p in
        expect p SEMI ";";
        loop ((name, d) :: acc)
    | _ -> List.rev acc
  in
  loop []

(* Replace Var nodes that name enum literals with Sym nodes. *)
let rec resolve_syms enum_syms (e : Ast.expr) : Ast.expr =
  let go = resolve_syms enum_syms in
  match e with
  | Ast.Var n when List.mem n enum_syms -> Ast.Sym n
  | Ast.Int _ | Ast.Sym _ | Ast.Var _ -> e
  | Ast.Add (a, b) -> Ast.Add (go a, go b)
  | Ast.Sub (a, b) -> Ast.Sub (go a, go b)
  | Ast.Mul (a, b) -> Ast.Mul (go a, go b)
  | Ast.Neg a -> Ast.Neg (go a)
  | Ast.Cmp (c, a, b) -> Ast.Cmp (c, go a, go b)
  | Ast.Not a -> Ast.Not (go a)
  | Ast.And (a, b) -> Ast.And (go a, go b)
  | Ast.Or (a, b) -> Ast.Or (go a, go b)
  | Ast.Case arms -> Ast.Case (List.map (fun (c, v) -> (go c, go v)) arms)
  | Ast.Set es -> Ast.Set (List.map go es)

let parse_program p =
  expect_kw p "MODULE";
  let module_name = parse_ident p in
  if module_name <> "main" then fail p "expected MODULE main";
  let state_vars = ref [] in
  let input_vars = ref [] in
  let defines = ref [] in
  let init = ref [] in
  let next_eqs = ref [] in
  let invarspecs = ref [] in
  let spec_counter = ref 0 in
  let rec sections () =
    match p.tok with
    | KW "VAR" ->
        next p;
        state_vars := !state_vars @ parse_var_decls p;
        sections ()
    | KW "IVAR" ->
        next p;
        input_vars := !input_vars @ parse_var_decls p;
        sections ()
    | KW "DEFINE" ->
        next p;
        let rec defs () =
          match p.tok with
          | IDENT name ->
              next p;
              expect p ASSIGN_OP ":=";
              let e = parse_or p in
              expect p SEMI ";";
              defines := !defines @ [ (name, e) ];
              defs ()
          | _ -> ()
        in
        defs ();
        sections ()
    | KW "ASSIGN" ->
        next p;
        let rec assigns () =
          match p.tok with
          | KW ("init" | "next") ->
              let kind = (match p.tok with KW k -> k | _ -> assert false) in
              next p;
              expect p LPAREN "(";
              let target = parse_ident p in
              expect p RPAREN ")";
              expect p ASSIGN_OP ":=";
              let e = parse_or p in
              expect p SEMI ";";
              if kind = "init" then init := !init @ [ (target, e) ]
              else next_eqs := !next_eqs @ [ (target, e) ];
              assigns ()
          | _ -> ()
        in
        assigns ();
        sections ()
    | KW "INVARSPEC" ->
        next p;
        (* Named form (what the printer emits, nuXmv-compatible):
             INVARSPEC NAME prop := expr;
           The bare form without a name is still accepted and gets an
           auto-generated one. *)
        let name =
          match p.tok with
          | KW "NAME" ->
              next p;
              let n = parse_ident p in
              expect p ASSIGN_OP ":=";
              n
          | _ ->
              incr spec_counter;
              Printf.sprintf "spec%d" !spec_counter
        in
        let e = parse_or p in
        expect p SEMI ";";
        invarspecs := !invarspecs @ [ (name, e) ];
        sections ()
    | EOF -> ()
    | _ -> fail p "expected a section keyword"
  in
  sections ();
  (* Resolve enum literals across all expressions. *)
  let enum_syms =
    List.concat_map
      (fun (_, d) -> match d with Ast.Enum syms -> syms | Ast.Range _ -> [])
      (!state_vars @ !input_vars)
  in
  let fix = resolve_syms enum_syms in
  {
    Ast.state_vars = !state_vars;
    input_vars = !input_vars;
    defines = List.map (fun (n, e) -> (n, fix e)) !defines;
    init = List.map (fun (n, e) -> (n, fix e)) !init;
    next = List.map (fun (n, e) -> (n, fix e)) !next_eqs;
    invarspecs = List.map (fun (n, e) -> (n, fix e)) !invarspecs;
  }

let parse text =
  let p = make_parser text in
  match parse_program p with
  | prog -> Ok prog
  | exception Error msg -> Error msg

let parse_expr text =
  let p = make_parser text in
  match
    let e = parse_or p in
    if p.tok <> EOF then fail p "trailing input";
    e
  with
  | e -> Ok e
  | exception Error msg -> Error msg
