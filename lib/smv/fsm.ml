type state = Ast.value array

type trace = state list

type stats = { n_states : int; n_transitions : int }

type outcome = {
  stats : stats;
  violations : (string * trace) list;
}

exception Eval_error of string

(* Evaluation environment: state variables by index, optional input
   valuation, and lazily computed DEFINEs. *)
type env = {
  prog : Ast.program;
  state_index : (string * int) list;
  input_index : (string * int) list;
  state : state;
  inputs : Ast.value array;
  define_cache : (string, Ast.value) Hashtbl.t;
}

let make_indices prog =
  let index pairs = List.mapi (fun i (n, _) -> (n, i)) pairs in
  (index prog.Ast.state_vars, index prog.Ast.input_vars)

let make_env prog (state_index, input_index) state inputs =
  { prog; state_index; input_index; state; inputs; define_cache = Hashtbl.create 16 }

let as_int = function
  | Ast.VInt v -> v
  | Ast.VBool _ | Ast.VSym _ -> raise (Eval_error "integer expected")

let as_bool = function
  | Ast.VBool b -> b
  | Ast.VInt _ | Ast.VSym _ -> raise (Eval_error "boolean expected")

let rec eval env (e : Ast.expr) : Ast.value =
  match e with
  | Ast.Int v -> Ast.VInt v
  | Ast.Sym "TRUE" -> Ast.VBool true
  | Ast.Sym "FALSE" -> Ast.VBool false
  | Ast.Sym s -> Ast.VSym s
  | Ast.Var n -> lookup env n
  | Ast.Add (a, b) -> Ast.VInt (as_int (eval env a) + as_int (eval env b))
  | Ast.Sub (a, b) -> Ast.VInt (as_int (eval env a) - as_int (eval env b))
  | Ast.Mul (a, b) -> Ast.VInt (as_int (eval env a) * as_int (eval env b))
  | Ast.Neg a -> Ast.VInt (-as_int (eval env a))
  | Ast.Cmp (c, a, b) -> Ast.VBool (eval_cmp env c a b)
  | Ast.Not a -> Ast.VBool (not (as_bool (eval env a)))
  | Ast.And (a, b) -> Ast.VBool (as_bool (eval env a) && as_bool (eval env b))
  | Ast.Or (a, b) -> Ast.VBool (as_bool (eval env a) || as_bool (eval env b))
  | Ast.Case arms -> eval_case env arms
  | Ast.Set _ -> raise (Eval_error "set expression outside init/next")

and eval_cmp env c a b =
  let va = eval env a and vb = eval env b in
  match c with
  | Ast.Eq -> Ast.value_equal va vb
  | Ast.Ne -> not (Ast.value_equal va vb)
  | Ast.Lt -> as_int va < as_int vb
  | Ast.Le -> as_int va <= as_int vb
  | Ast.Ge -> as_int va >= as_int vb
  | Ast.Gt -> as_int va > as_int vb

and eval_case env = function
  | [] -> raise (Eval_error "no case arm matched")
  | (cond, value) :: rest ->
      if as_bool (eval env cond) then eval env value else eval_case env rest

and lookup env n =
  match List.assoc_opt n env.state_index with
  | Some i -> env.state.(i)
  | None -> (
      match List.assoc_opt n env.input_index with
      | Some i ->
          if i >= Array.length env.inputs then
            raise (Eval_error (n ^ ": input variable not in scope"))
          else env.inputs.(i)
      | None -> (
          match Hashtbl.find_opt env.define_cache n with
          | Some v -> v
          | None -> (
              match List.assoc_opt n env.prog.Ast.defines with
              | Some body ->
                  let v = eval env body in
                  Hashtbl.add env.define_cache n v;
                  v
              | None -> raise (Eval_error ("unknown identifier " ^ n)))))

(* Choices for one assignment right-hand side: a Set yields each member
   (each must be a constant); anything else evaluates deterministically. *)
let assignment_choices env = function
  | Ast.Set members -> List.map (eval env) members
  | e -> [ eval env e ]

let cartesian (lists : 'a list list) : 'a list list =
  List.fold_right
    (fun options acc ->
      List.concat_map (fun o -> List.map (fun rest -> o :: rest) acc) options)
    lists [ [] ]

let check_domain_value name domain v =
  let ok =
    match (domain, v) with
    | Ast.Range (lo, hi), Ast.VInt x -> lo <= x && x <= hi
    | Ast.Enum syms, Ast.VSym s -> List.mem s syms
    | Ast.Enum syms, Ast.VBool b ->
        List.mem (if b then "TRUE" else "FALSE") syms
    | (Ast.Range _ | Ast.Enum _), _ -> false
  in
  if not ok then
    raise (Eval_error (Printf.sprintf "value out of domain for %s" name))

let initial_states prog indices =
  (* init(x) must be a constant or a Set of constants; variables without an
     init equation range over their whole domain. *)
  let dummy_env = make_env prog indices [||] [||] in
  let per_var (name, domain) =
    match List.assoc_opt name prog.Ast.init with
    | None -> Ast.domain_values domain
    | Some e ->
        let choices = assignment_choices dummy_env e in
        List.iter (check_domain_value name domain) choices;
        choices
  in
  cartesian (List.map per_var prog.Ast.state_vars)
  |> List.map Array.of_list

let successors prog indices state =
  (* All next states over every input valuation and every Set choice. *)
  let input_valuations =
    cartesian (List.map (fun (_, d) -> Ast.domain_values d) prog.Ast.input_vars)
    |> List.map Array.of_list
  in
  let next_for inputs =
    let env = make_env prog indices state inputs in
    let per_var (name, domain) =
      match List.assoc_opt name prog.Ast.next with
      | None -> [ env.state.(List.assoc name (fst indices)) ] (* frozen *)
      | Some e ->
          let choices = assignment_choices env e in
          List.iter (check_domain_value name domain) choices;
          choices
    in
    cartesian (List.map per_var prog.Ast.state_vars) |> List.map Array.of_list
  in
  List.concat_map next_for input_valuations

let state_to_assoc prog state =
  List.mapi (fun i (n, _) -> (n, state.(i))) prog.Ast.state_vars

let eval_in_state prog state e =
  let indices = make_indices prog in
  let env = make_env prog indices state [||] in
  match eval env e with
  | v -> Ok v
  | exception Eval_error msg -> Error msg

type error =
  [ `Invalid of string | `Eval of string | `State_limit of int ]

let error_to_string = function
  | `Invalid msg -> "invalid program: " ^ msg
  | `Eval msg -> msg
  | `State_limit n -> Printf.sprintf "state limit exceeded (%d states)" n

exception State_limit_exceeded

let explore ?(state_limit = 200_000) prog =
  match Ast.validate prog with
  | Error msg -> Error (`Invalid msg)
  | Ok () -> (
      let indices = make_indices prog in
      try
        let seen : (state, unit) Hashtbl.t = Hashtbl.create 1024 in
        let parent : (state, state option) Hashtbl.t = Hashtbl.create 1024 in
        let edges : (state * state, unit) Hashtbl.t = Hashtbl.create 4096 in
        let queue = Queue.create () in
        let push parent_state s =
          if not (Hashtbl.mem seen s) then begin
            if Hashtbl.length seen >= state_limit then
              raise State_limit_exceeded;
            Hashtbl.add seen s ();
            Hashtbl.add parent s parent_state;
            Queue.add s queue
          end
        in
        List.iter (push None) (initial_states prog indices);
        while not (Queue.is_empty queue) do
          let s = Queue.pop queue in
          let succs = successors prog indices s in
          List.iter
            (fun s' ->
              if not (Hashtbl.mem edges (s, s')) then Hashtbl.add edges (s, s') ();
              push (Some s) s')
            succs
        done;
        (* Invariant checking over all reached states. *)
        let trace_to s =
          let rec build acc s =
            match Hashtbl.find parent s with
            | None -> s :: acc
            | Some p -> build (s :: acc) p
          in
          build [] s
        in
        let violations =
          List.filter_map
            (fun (name, spec) ->
              let violating =
                Hashtbl.fold
                  (fun s () acc ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                        let env = make_env prog indices s [||] in
                        if as_bool (eval env spec) then None else Some s)
                  seen None
              in
              Option.map (fun s -> (name, trace_to s)) violating)
            prog.Ast.invarspecs
        in
        Ok
          {
            stats =
              { n_states = Hashtbl.length seen; n_transitions = Hashtbl.length edges };
            violations;
          }
      with
      | State_limit_exceeded -> Error (`State_limit state_limit)
      | Eval_error msg -> Error (`Eval msg)
      | Invalid_argument msg -> Error (`Eval msg))
