(** Bit-blasting compiler: {!Term} DAGs to CNF via {!Bitblast}.

    Widths come from {!Interval.term_interval} plus one slack bit, so all
    bit-vector arithmetic is exact (no wraparound is reachable). Shared
    sub-terms compile once (memoised by term id). The compiler is
    incremental: formulas can be asserted on top of earlier ones and the
    underlying solver re-queried, which is how counterexample enumeration
    adds blocking constraints (the paper's [P3] loop). *)

type t

val create : ?sink:(Sat.Solver.proof_step -> unit) -> unit -> t
(** [?sink] becomes the underlying solver's DRUP proof sink, installed
    before any clause is generated (see {!Bitblast.Cnf.create}). *)

val cnf : t -> Bitblast.Cnf.t
val solver : t -> Sat.Solver.t

val compile_term : t -> Term.term -> Bitblast.Bv.t
val compile_formula : t -> Term.formula -> Sat.Lit.t

val assert_formula : t -> Term.formula -> unit
(** Compile and add as a unit clause. *)

val var_bv : t -> Term.var -> Bitblast.Bv.t
(** The variable's bit-vector, compiling it (with its range constraints)
    on first use. *)

val var_value : t -> Term.var -> int
(** Decode a variable under the current model (call after Sat). *)

val prioritize : t -> Term.var list -> unit
(** Tell the CDCL solver to branch on these variables' bits before
    anything else. Bit-blasted formulas are circuits: deciding the circuit
    inputs first lets propagation evaluate everything downstream, which is
    essential for fast exhaustive (UNSAT) answers. *)

val block_assignment : ?guard:Sat.Lit.t -> t -> Term.var list -> unit
(** Add a clause excluding the current model's values of the given
    variables (at least one must differ). Call after Sat. With [?guard]
    the clause is [¬guard ∨ …]: inert unless [guard] is assumed, which
    lets an enumeration retire its blocking clauses afterwards — the
    mechanism behind bounded counting under XOR hash constraints, where
    the enumerated cell must not poison later queries. *)

val var_bits : t -> Term.var -> Sat.Lit.t list
(** The variable's compiled bits (LSB first), compiling it (with range
    constraints) on first use. Distinct variable values have distinct bit
    patterns (the encoding is functional), so parity constraints over
    these bits hash the projected model space. *)

val n_clauses : t -> int
val n_vars : t -> int
