(** Bounded-integer terms and formulas.

    The quantifier-free fragment needed to encode one forward pass of an
    integer ReLU network under symbolic input noise: linear arithmetic
    with constant coefficients over interval-bounded variables, plus
    [Relu], [Max] and [Ite]. Every variable carries inclusive bounds; the
    solver is complete over those finite ranges.

    Terms carry unique ids so the compiler and the interval analysis can
    memoise shared sub-DAGs. Smart constructors perform constant folding
    but no deeper rewriting. *)

type var = private { vid : int; name : string; lo : int; hi : int }

type term = private { id : int; node : node }

and node =
  | Const of int
  | Var of var
  | Add of term * term
  | Sub of term * term
  | Mulc of int * term  (** constant * term *)
  | Neg of term
  | Relu of term
  | Sign of term  (** +1 when the argument is >= 0, -1 otherwise *)
  | Max of term * term
  | Ite of formula * term * term

and formula = private { fid : int; fnode : fnode }

and fnode =
  | True
  | False
  | Le of term * term
  | Lt of term * term
  | Eq of term * term
  | Not of formula
  | And of formula list
  | Or of formula list

val var : name:string -> lo:int -> hi:int -> var
(** Fresh variable with inclusive bounds; requires [lo <= hi]. *)

val const : int -> term
val of_var : var -> term
val add : term -> term -> term
val sub : term -> term -> term
val mulc : int -> term -> term
val neg : term -> term
val relu : term -> term
val sign_ : term -> term
(** [sign_ t] is +1 when [t >= 0], -1 otherwise — the binarized-network
    activation. Compiles to a single comparator, not an arithmetic chain. *)

val max_ : term -> term -> term
val ite : formula -> term -> term -> term
val sum : term list -> term
(** [sum []] is [const 0]. *)

val tru : formula
val fls : formula
val le : term -> term -> formula
val lt : term -> term -> formula
val eq : term -> term -> formula
val ge : term -> term -> formula
val gt : term -> term -> formula
val not_ : formula -> formula
val and_ : formula list -> formula
val or_ : formula list -> formula
val implies : formula -> formula -> formula

type assignment = (var * int) list

val lookup : assignment -> var -> int
(** Raises [Not_found] if the variable is unbound. *)

val eval_term : assignment -> term -> int
(** Exact integer evaluation; raises [Not_found] on unbound variables. *)

val eval_formula : assignment -> formula -> bool

val vars_of_formula : formula -> var list
(** Distinct variables, ordered by creation id. *)

val vars_of_term : term -> var list
val pp_term : Format.formatter -> term -> unit
val pp_formula : Format.formatter -> formula -> unit
