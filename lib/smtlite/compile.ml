module Bv = Bitblast.Bv
module Cnf = Bitblast.Cnf

type t = {
  cnf : Cnf.t;
  term_memo : (int, Bv.t) Hashtbl.t;
  formula_memo : (int, Sat.Lit.t) Hashtbl.t;
  var_memo : (int, Bv.t) Hashtbl.t;
  interval_memo : (int, Interval.t) Hashtbl.t;
}

let create ?sink () =
  {
    cnf = Cnf.create ?sink ();
    term_memo = Hashtbl.create 256;
    formula_memo = Hashtbl.create 64;
    var_memo = Hashtbl.create 16;
    interval_memo = Hashtbl.create 256;
  }

let cnf t = t.cnf

let solver t = Cnf.solver t.cnf

(* Interval of a term, memoised across the whole compiler lifetime (term
   ids are globally unique). *)
let rec interval t (term : Term.term) =
  match Hashtbl.find_opt t.interval_memo term.id with
  | Some iv -> iv
  | None ->
      let iv =
        match term.node with
        | Term.Const v -> Interval.point v
        | Term.Var v -> Interval.of_var v
        | Term.Add (a, b) -> Interval.add (interval t a) (interval t b)
        | Term.Sub (a, b) -> Interval.sub (interval t a) (interval t b)
        | Term.Mulc (c, a) -> Interval.mulc c (interval t a)
        | Term.Neg a -> Interval.neg (interval t a)
        | Term.Relu a -> Interval.relu (interval t a)
        | Term.Sign a -> Interval.sign_ (interval t a)
        | Term.Max (a, b) -> Interval.max_ (interval t a) (interval t b)
        | Term.Ite (_, a, b) -> Interval.hull (interval t a) (interval t b)
      in
      Hashtbl.add t.interval_memo term.id iv;
      iv

let term_width t term = Interval.width_for (interval t term) + 1

(* Truncation to a smaller width is exact because interval analysis
   guarantees the value fits the target width. *)
let resize bv w =
  let cur = Bv.width bv in
  if w = cur then bv
  else if w > cur then Bv.sign_extend bv w
  else Bv.of_bits (Array.sub (Bv.bits bv) 0 w)

let compare_widths x y = max (Bv.width x) (Bv.width y) + 1

let rec compile_var t (v : Term.var) =
  match Hashtbl.find_opt t.var_memo v.vid with
  | Some bv -> bv
  | None ->
      let w = Interval.width_for (Interval.of_var v) + 1 in
      let bv = Bv.fresh t.cnf ~width:w in
      (* Range constraints lo <= v <= hi. *)
      let lo = Bv.const t.cnf ~width:w v.lo in
      let hi = Bv.const t.cnf ~width:w v.hi in
      Cnf.assert_lit t.cnf (Bv.sle t.cnf lo bv);
      Cnf.assert_lit t.cnf (Bv.sle t.cnf bv hi);
      Hashtbl.add t.var_memo v.vid bv;
      bv

and compile_term t (term : Term.term) =
  match Hashtbl.find_opt t.term_memo term.id with
  | Some bv -> bv
  | None ->
      let w = term_width t term in
      let bv =
        match term.node with
        | Term.Const v -> Bv.const t.cnf ~width:w v
        | Term.Var v -> resize (compile_var t v) w
        | Term.Add (a, b) ->
            Bv.add t.cnf (resize (compile_term t a) w) (resize (compile_term t b) w)
        | Term.Sub (a, b) ->
            Bv.sub t.cnf (resize (compile_term t a) w) (resize (compile_term t b) w)
        | Term.Mulc (c, a) -> Bv.mul_const t.cnf (resize (compile_term t a) w) c
        | Term.Neg a -> Bv.neg t.cnf (resize (compile_term t a) w)
        | Term.Relu a ->
            let ba = compile_term t a in
            resize (Bv.relu t.cnf ba) w
        | Term.Sign a ->
            (* Native sign-CNF: one comparator per neuron, no arithmetic.
               A stable neuron (interval analysis already fixes the sign)
               folds to a constant; otherwise the result is the 2-bit
               two's-complement vector [1; a < 0] — lsb always set, sign
               bit the comparator literal — i.e. 01 = +1, 11 = -1. *)
            let ia = interval t a in
            if ia.Interval.lo >= 0 then Bv.const t.cnf ~width:w 1
            else if ia.Interval.hi < 0 then Bv.const t.cnf ~width:w (-1)
            else
              let ba = compile_term t a in
              let wa = Bv.width ba + 1 in
              let neg_lit =
                Bv.slt t.cnf (resize ba wa) (Bv.const t.cnf ~width:wa 0)
              in
              resize (Bv.of_bits [| Cnf.btrue t.cnf; neg_lit |]) w
        | Term.Max (a, b) ->
            let ba = compile_term t a and bb = compile_term t b in
            let wc = max (Bv.width ba) (Bv.width bb) in
            resize (Bv.smax t.cnf (resize ba wc) (resize bb wc)) w
        | Term.Ite (c, a, b) ->
            let sel = compile_formula t c in
            Bv.ite t.cnf sel (resize (compile_term t a) w) (resize (compile_term t b) w)
      in
      Hashtbl.add t.term_memo term.id bv;
      bv

and compile_formula t (f : Term.formula) =
  match Hashtbl.find_opt t.formula_memo f.fid with
  | Some l -> l
  | None ->
      let compile_cmp op a b =
        let ba = compile_term t a and bb = compile_term t b in
        let w = compare_widths ba bb in
        op t.cnf (resize ba w) (resize bb w)
      in
      let l =
        match f.fnode with
        | Term.True -> Cnf.btrue t.cnf
        | Term.False -> Cnf.bfalse t.cnf
        | Term.Le (a, b) -> compile_cmp Bv.sle a b
        | Term.Lt (a, b) -> compile_cmp Bv.slt a b
        | Term.Eq (a, b) -> compile_cmp Bv.eq a b
        | Term.Not g -> Cnf.g_not (compile_formula t g)
        | Term.And fs -> Cnf.g_and_list t.cnf (List.map (compile_formula t) fs)
        | Term.Or fs -> Cnf.g_or_list t.cnf (List.map (compile_formula t) fs)
      in
      Hashtbl.add t.formula_memo f.fid l;
      l

let assert_formula t f = Cnf.assert_lit t.cnf (compile_formula t f)

let var_bv = compile_var

let var_value t v = Bv.to_int t.cnf (var_bv t v)

let prioritize t vars =
  let bits =
    List.concat_map
      (fun v ->
        Array.to_list (Array.map Sat.Lit.var (Bv.bits (var_bv t v))))
      vars
  in
  Sat.Solver.set_priority (solver t) bits

let block_assignment ?guard t vars =
  if vars = [] then invalid_arg "Compile.block_assignment: no variables";
  let clause =
    List.concat_map
      (fun v ->
        let bv = var_bv t v in
        Array.to_list
          (Array.map
             (fun bit ->
               if Cnf.lit_value t.cnf bit then Sat.Lit.neg bit else bit)
             (Bv.bits bv)))
      vars
  in
  let clause =
    match guard with None -> clause | Some g -> Sat.Lit.neg g :: clause
  in
  Cnf.add_clause t.cnf clause

let var_bits t v = Array.to_list (Bv.bits (var_bv t v))

let n_clauses t = Sat.Solver.nclauses (solver t)

let n_vars t = Sat.Solver.nvars (solver t)
