(** Satisfiability checking and model enumeration for {!Term} formulas.

    [check] is one-shot. A {!session} keeps the compiled CNF alive so that
    blocking clauses can be added between queries — the mechanism behind
    the paper's adversarial-noise-vector extraction (property P3: re-query
    with the disjunction of already-found noise vectors excluded). *)

type model = Term.assignment

type outcome = Sat of model | Unsat | Unknown of Resil.Budget.reason
(** [Unknown] carries why the solver stopped: [Conflicts] for a plain
    [max_conflicts] exhaustion, otherwise the budget cap that fired
    (deadline / memory / cancelled). *)

val check :
  ?max_conflicts:int -> ?budget:Resil.Budget.t -> Term.formula -> outcome
(** The returned model binds every variable occurring in the formula and
    satisfies it (guaranteed by construction; re-checkable with
    {!Term.eval_formula}). *)

type session

val open_session : ?trace:Cert.Proof.trace -> Term.formula -> session
(** [?trace] attaches a DRUP proof trace to the session's solver before
    anything is compiled; {!solve_certified} then snapshots certificates
    from it. Without a trace, proof logging is off (and free). *)

val assert_also : session -> Term.formula -> unit
(** Conjoin another formula. *)

val declare : session -> Term.var list -> unit
(** Make variables part of the session (with their range constraints)
    even if no asserted formula mentions them, so that models bind them
    and {!block} may project onto them. Must be called before the solve
    whose model will be blocked. *)

type assumption
(** A compiled formula that can be enabled per-{!solve} call without being
    permanently asserted. *)

val assume : session -> Term.formula -> assumption
(** Compile a formula into an assumable literal: its CNF definition is
    added to the session, but the formula only constrains a {!solve} call
    that passes the returned assumption. This is the mechanism behind the
    incremental tolerance search — the noise bound of each binary-search
    probe becomes a range assumption over one warm session instead of a
    fresh Tseitin encoding per probe. *)

val solve :
  ?assumptions:assumption list -> ?max_conflicts:int ->
  ?budget:Resil.Budget.t -> session -> outcome
(** Satisfiability of the asserted formulas conjoined with the given
    assumptions. The session stays usable after any outcome: an [Unsat]
    under assumptions does not poison later calls with different ones,
    and a budget-exhausted or cancelled query leaves the session ready
    for the next [solve]. *)

val solve_certified :
  ?assumptions:assumption list ->
  ?max_conflicts:int ->
  ?budget:Resil.Budget.t ->
  session ->
  outcome * Cert.Verdict.t option
(** Like {!solve}, additionally returning an independently checkable
    certificate when the session has a proof trace: a [Sat] answer yields
    a {!Cert.Verdict.Model} (the bit-level model against the full CNF), an
    [Unsat] answer a {!Cert.Verdict.Refutation} (DRUP proof of
    [CNF ∧ assumptions ⊢ ⊥]). [None] when the session was opened without
    [?trace] or the outcome is [Unknown]. *)

val check_certified :
  ?max_conflicts:int -> Term.formula -> outcome * Cert.Verdict.t option
(** One-shot {!solve_certified} on a fresh session with a fresh trace. *)

val block : session -> Term.var list -> unit
(** After a [Sat] answer, exclude the current values of the given
    variables from future models. *)

val prioritize : session -> Term.var list -> unit
(** Re-point the solver's branching priority at these variables' bits.
    {!open_session} prioritizes the formula's own variables; a counting
    client that [declare]s projection variables afterwards calls this so
    exhaustive sweeps keep deciding circuit inputs first. *)

val fresh_assumption : session -> assumption
(** A fresh unconstrained literal, for use as an activation guard with
    {!block_under}. Assuming it enables the clauses guarded by it; never
    assuming it again retires them. *)

val block_under : session -> guard:assumption -> Term.var list -> unit
(** Like {!block}, but the blocking clause is enabled only by [guard]:
    the clause is [¬guard ∨ blocking]. A bounded enumeration blocks under
    a fresh guard, then drops the guard, leaving the session exactly as
    constrained as before — the repeated-counting primitive of the
    XOR-hash approximate counter. *)

val var_bits : session -> Term.var -> Sat.Lit.t list
(** The variable's compiled bits (LSB first), declaring it (with range
    constraints) on first use. Distinct values map to distinct patterns,
    so random parities over these bits are a pairwise-independent hash of
    the projected model space. *)

val assume_parity : session -> Sat.Lit.t list -> parity:bool -> assumption
(** An assumable literal equivalent to "the listed bits have odd parity"
    ([parity = true]) or even parity ([false]), encoded as a Tseitin XOR
    chain ({!Bitblast.Cnf.g_xor_list}). The empty list has even parity:
    [assume_parity s [] ~parity:false] is the true assumption, and with
    [~parity:true] the false one. *)

val enumerate :
  ?limit:int ->
  ?max_conflicts:int ->
  ?budget:Resil.Budget.t ->
  Term.formula ->
  project:Term.var list ->
  model list * [ `Complete | `Truncated | `Budget of Resil.Budget.reason ]
(** All models of the formula projected onto [project] (each listed once).
    [`Complete] means the enumeration provably exhausted the projected
    models; [`Truncated] means [limit] stopped it; [`Budget] means a
    per-call conflict cap or the budget ran out mid-enumeration (the
    models found so far are still returned). [project] must be
    non-empty. *)

val stats : session -> Sat.Solver.stats

val sat_solver : session -> Sat.Solver.t
(** The session's underlying CDCL solver, for portfolio tuning:
    {!Sat.Solver.set_diversification} and {!Sat.Solver.set_clause_hooks}
    compose with sessions (assumptions, certificates and budgets are
    unaffected). Do not add clauses or variables through this handle —
    the compiler owns the solver's clause database. *)
