type t = { lo : int; hi : int }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point v = { lo = v; hi = v }

let of_var (v : Term.var) = { lo = v.lo; hi = v.hi }

let contains t v = t.lo <= v && v <= t.hi

let add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }

let sub a b = { lo = a.lo - b.hi; hi = a.hi - b.lo }

let neg a = { lo = -a.hi; hi = -a.lo }

let mulc c a =
  if c >= 0 then { lo = c * a.lo; hi = c * a.hi }
  else { lo = c * a.hi; hi = c * a.lo }

let relu a = { lo = max 0 a.lo; hi = max 0 a.hi }

let sign_ a =
  if a.lo >= 0 then { lo = 1; hi = 1 }
  else if a.hi < 0 then { lo = -1; hi = -1 }
  else { lo = -1; hi = 1 }

let max_ a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let width_for t =
  let rec loop w =
    if w >= 62 then 62
    else if t.lo >= -(1 lsl (w - 1)) && t.hi <= (1 lsl (w - 1)) - 1 then w
    else loop (w + 1)
  in
  loop 1

type env = Term.var -> t

let default_env = of_var

let term_interval ?(env = default_env) term =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go (t : Term.term) =
    match Hashtbl.find_opt memo t.id with
    | Some iv -> iv
    | None ->
        let iv =
          match t.node with
          | Term.Const v -> point v
          | Term.Var v -> env v
          | Term.Add (a, b) -> add (go a) (go b)
          | Term.Sub (a, b) -> sub (go a) (go b)
          | Term.Mulc (c, a) -> mulc c (go a)
          | Term.Neg a -> neg (go a)
          | Term.Relu a -> relu (go a)
          | Term.Sign a -> sign_ (go a)
          | Term.Max (a, b) -> max_ (go a) (go b)
          | Term.Ite (_, a, b) -> hull (go a) (go b)
        in
        Hashtbl.add memo t.id iv;
        iv
  in
  go term

let formula_decide ?(env = default_env) formula =
  let tmemo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go_t (t : Term.term) =
    match Hashtbl.find_opt tmemo t.id with
    | Some iv -> iv
    | None ->
        let iv =
          match t.node with
          | Term.Const v -> point v
          | Term.Var v -> env v
          | Term.Add (a, b) -> add (go_t a) (go_t b)
          | Term.Sub (a, b) -> sub (go_t a) (go_t b)
          | Term.Mulc (c, a) -> mulc c (go_t a)
          | Term.Neg a -> neg (go_t a)
          | Term.Relu a -> relu (go_t a)
          | Term.Sign a -> sign_ (go_t a)
          | Term.Max (a, b) -> max_ (go_t a) (go_t b)
          | Term.Ite (c, a, b) -> (
              match go_f c with
              | `True -> go_t a
              | `False -> go_t b
              | `Unknown -> hull (go_t a) (go_t b))
        in
        Hashtbl.add tmemo t.id iv;
        iv
  and go_f (f : Term.formula) =
    match f.fnode with
    | Term.True -> `True
    | Term.False -> `False
    | Term.Le (a, b) ->
        let ia = go_t a and ib = go_t b in
        if ia.hi <= ib.lo then `True
        else if ia.lo > ib.hi then `False
        else `Unknown
    | Term.Lt (a, b) ->
        let ia = go_t a and ib = go_t b in
        if ia.hi < ib.lo then `True
        else if ia.lo >= ib.hi then `False
        else `Unknown
    | Term.Eq (a, b) ->
        let ia = go_t a and ib = go_t b in
        if ia.lo = ia.hi && ib.lo = ib.hi && ia.lo = ib.lo then `True
        else if ia.hi < ib.lo || ib.hi < ia.lo then `False
        else `Unknown
    | Term.Not g -> (
        match go_f g with `True -> `False | `False -> `True | `Unknown -> `Unknown)
    | Term.And fs ->
        let results = List.map go_f fs in
        if List.exists (( = ) `False) results then `False
        else if List.for_all (( = ) `True) results then `True
        else `Unknown
    | Term.Or fs ->
        let results = List.map go_f fs in
        if List.exists (( = ) `True) results then `True
        else if List.for_all (( = ) `False) results then `False
        else `Unknown
  in
  go_f formula
