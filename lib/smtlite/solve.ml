type model = Term.assignment

type outcome = Sat of model | Unsat | Unknown of Resil.Budget.reason

type session = {
  compiler : Compile.t;
  rev_vars : Term.var list ref;    (* session variables, newest first *)
  known : (int, unit) Hashtbl.t;   (* their vids: O(1) dedup *)
  trace : Cert.Proof.trace option; (* DRUP event log, when certifying *)
  opened_ns : int64;               (* session birth, monotonic *)
  clauses_seen : int ref;          (* solver clauses at the last solve *)
}

(* Session/query observability. Clauses are added by the compiler during
   assert/assume, so "clauses added per query" is the solver's clause
   count delta between consecutive [solve] calls on the same session. *)
let m_sessions = Obs.Metrics.counter "smtlite.sessions"

let m_queries = Obs.Metrics.counter "smtlite.queries"

let h_clauses_per_query =
  Obs.Metrics.histogram "smtlite.clauses_per_query"
    ~buckets:[| 0.; 10.; 100.; 1000.; 10_000.; 100_000.; 1_000_000. |]

let h_session_age = Obs.Metrics.histogram "smtlite.session_age_s"

let h_query_s = Obs.Metrics.histogram "smtlite.query_s"

let add_vars session vars =
  List.iter
    (fun (v : Term.var) ->
      if not (Hashtbl.mem session.known v.Term.vid) then begin
        Hashtbl.add session.known v.Term.vid ();
        session.rev_vars := v :: !(session.rev_vars)
      end)
    vars

let register_vars session f = add_vars session (Term.vars_of_formula f)

let session_vars session = List.rev !(session.rev_vars)

let open_session ?trace f =
  let sink = Option.map Cert.Proof.sink trace in
  Obs.Metrics.incr m_sessions;
  let session =
    {
      compiler = Compile.create ?sink ();
      rev_vars = ref [];
      known = Hashtbl.create 64;
      trace;
      opened_ns = Obs.Clock.now_ns ();
      clauses_seen = ref 0;
    }
  in
  register_vars session f;
  Compile.assert_formula session.compiler f;
  (* Branch on the problem variables before the Tseitin internals: the
     formula is a circuit over them, so full input assignments propagate
     to a decision in one sweep. *)
  Compile.prioritize session.compiler (session_vars session);
  session

let assert_also session f =
  register_vars session f;
  Compile.assert_formula session.compiler f

let declare session vars =
  (* Compile (and range-constrain) variables before solving, so that
     models bind them and blocking clauses can mention them — required
     for projection variables that do not occur in the formula. *)
  add_vars session vars;
  List.iter (fun v -> ignore (Compile.var_bv session.compiler v)) vars

type assumption = Sat.Lit.t

let assume session f =
  register_vars session f;
  Compile.compile_formula session.compiler f

let extract_model session =
  List.map (fun v -> (v, Compile.var_value session.compiler v)) (session_vars session)

let solve ?(assumptions = []) ?max_conflicts ?budget session =
  let solver = Compile.solver session.compiler in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_queries;
    let nclauses = Sat.Solver.nclauses solver in
    Obs.Metrics.observe h_clauses_per_query
      (float_of_int (nclauses - !(session.clauses_seen)));
    session.clauses_seen := nclauses;
    Obs.Metrics.observe h_session_age (Obs.Clock.elapsed_s ~since:session.opened_ns)
  end;
  let t0 = if Obs.Metrics.enabled () then Obs.Clock.now_ns () else 0L in
  let outcome =
    Obs.Span.with_ "smtlite.solve" (fun () ->
        match Sat.Solver.solve ~assumptions ?max_conflicts ?budget solver with
        | Sat.Solver.Sat -> Sat (extract_model session)
        | Sat.Solver.Unsat -> Unsat
        | Sat.Solver.Unknown ->
            Unknown
              (Option.value
                 (Sat.Solver.last_interrupt solver)
                 ~default:Resil.Budget.Conflicts))
  in
  if Obs.Metrics.enabled () then
    Obs.Metrics.observe h_query_s (Obs.Clock.elapsed_s ~since:t0);
  outcome

let solve_certified ?(assumptions = []) ?max_conflicts ?budget session =
  let outcome = solve ~assumptions ?max_conflicts ?budget session in
  let cert =
    match session.trace with
    | None -> None
    | Some trace -> (
        let solver = Compile.solver session.compiler in
        let n_vars = Sat.Solver.nvars solver in
        let asn_dimacs = List.map Sat.Lit.to_dimacs assumptions in
        match outcome with
        | Sat _ ->
            Some
              (Cert.Verdict.of_trace_model ~n_vars ~assumptions:asn_dimacs
                 ~model:(Sat.Solver.model solver) trace)
        | Unsat -> (
            match Cert.Verdict.of_trace_unsat ~n_vars trace with
            | Ok c -> Some c
            | Error _ -> None)
        | Unknown _ -> None)
  in
  (outcome, cert)

let block session vars = Compile.block_assignment session.compiler vars

let prioritize session vars = Compile.prioritize session.compiler vars

let fresh_assumption session = Bitblast.Cnf.fresh (Compile.cnf session.compiler)

let block_under session ~guard vars =
  Compile.block_assignment ~guard session.compiler vars

let var_bits session v =
  add_vars session [ v ];
  Compile.var_bits session.compiler v

let assume_parity session bits ~parity =
  let x = Bitblast.Cnf.g_xor_list (Compile.cnf session.compiler) bits in
  if parity then x else Bitblast.Cnf.g_not x

let check ?max_conflicts ?budget f = solve ?max_conflicts ?budget (open_session f)

let check_certified ?max_conflicts f =
  let trace = Cert.Proof.create () in
  solve_certified ?max_conflicts (open_session ~trace f)

let enumerate ?(limit = max_int) ?max_conflicts ?budget f ~project =
  if project = [] then invalid_arg "Solve.enumerate: empty projection";
  let session = open_session f in
  declare session project;
  let rec loop acc n =
    if n >= limit then (List.rev acc, `Truncated)
    else
      match solve ?max_conflicts ?budget session with
      | Unsat -> (List.rev acc, `Complete)
      | Unknown r -> (List.rev acc, `Budget r)
      | Sat model ->
          block session project;
          loop (model :: acc) (n + 1)
  in
  loop [] 0

let stats session = Sat.Solver.stats (Compile.solver session.compiler)

let sat_solver session = Compile.solver session.compiler
