(** Interval analysis over {!Term} DAGs.

    Serves two purposes: the bit-blasting compiler derives bit-vector
    widths from term intervals, and the fast-but-incomplete [Interval]
    analysis backend of the core library uses the same propagation to
    prove robustness without search (a miniature abstract interpreter in
    the style the related-work section attributes to LP/abstract tools). *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** Requires [lo <= hi]. *)

val point : int -> t
val of_var : Term.var -> t
val contains : t -> int -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mulc : int -> t -> t
val relu : t -> t
val sign_ : t -> t
(** Sign image: [{1}] when the interval is non-negative, [{-1}] when it is
    negative, [[-1, 1]] when it straddles 0. *)

val max_ : t -> t -> t
val hull : t -> t -> t
val width_for : t -> int
(** Smallest two's-complement bit width representing every value of the
    interval (at least 1). *)

type env = Term.var -> t
(** Interval environment; defaults to each variable's declared bounds. *)

val default_env : env

val term_interval : ?env:env -> Term.term -> t
(** Sound bottom-up propagation, memoised per term id within one call. *)

val formula_decide : ?env:env -> Term.formula -> [ `True | `False | `Unknown ]
(** Three-valued interval decision of a formula: [`True]/[`False] are
    sound; [`Unknown] means the intervals cannot decide. *)
