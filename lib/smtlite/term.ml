type var = { vid : int; name : string; lo : int; hi : int }

type term = { id : int; node : node }

and node =
  | Const of int
  | Var of var
  | Add of term * term
  | Sub of term * term
  | Mulc of int * term
  | Neg of term
  | Relu of term
  | Sign of term
  | Max of term * term
  | Ite of formula * term * term

and formula = { fid : int; fnode : fnode }

and fnode =
  | True
  | False
  | Le of term * term
  | Lt of term * term
  | Eq of term * term
  | Not of formula
  | And of formula list
  | Or of formula list

(* Atomic so that parallel verification workers can build encodings
   concurrently: ids must stay unique across domains. *)
let var_counter = Atomic.make 0

let term_counter = Atomic.make 0

let formula_counter = Atomic.make 0

let var ~name ~lo ~hi =
  if lo > hi then invalid_arg "Term.var: lo > hi";
  { vid = 1 + Atomic.fetch_and_add var_counter 1; name; lo; hi }

let mk node = { id = 1 + Atomic.fetch_and_add term_counter 1; node }

let mkf fnode = { fid = 1 + Atomic.fetch_and_add formula_counter 1; fnode }

let const v = mk (Const v)

let of_var v = mk (Var v)

let add a b =
  match (a.node, b.node) with
  | Const x, Const y -> const (x + y)
  | Const 0, _ -> b
  | _, Const 0 -> a
  | _ -> mk (Add (a, b))

let sub a b =
  match (a.node, b.node) with
  | Const x, Const y -> const (x - y)
  | _, Const 0 -> a
  | _ -> mk (Sub (a, b))

let neg a = match a.node with Const x -> const (-x) | _ -> mk (Neg a)

let mulc c a =
  match (c, a.node) with
  | 0, _ -> const 0
  | 1, _ -> a
  | -1, _ -> neg a
  | c, Const x -> const (c * x)
  | _ -> mk (Mulc (c, a))

let relu a =
  match a.node with Const x -> const (max 0 x) | _ -> mk (Relu a)

let sign_ a =
  match a.node with
  | Const x -> const (if x >= 0 then 1 else -1)
  | _ -> mk (Sign a)

let max_ a b =
  match (a.node, b.node) with
  | Const x, Const y -> const (max x y)
  | _ -> mk (Max (a, b))

let tru = mkf True

let fls = mkf False

let ite c a b =
  match c.fnode with True -> a | False -> b | _ -> mk (Ite (c, a, b))

let sum = function
  | [] -> const 0
  | t :: ts -> List.fold_left add t ts

let le a b =
  match (a.node, b.node) with
  | Const x, Const y -> if x <= y then tru else fls
  | _ -> mkf (Le (a, b))

let lt a b =
  match (a.node, b.node) with
  | Const x, Const y -> if x < y then tru else fls
  | _ -> mkf (Lt (a, b))

let eq a b =
  match (a.node, b.node) with
  | Const x, Const y -> if x = y then tru else fls
  | _ -> mkf (Eq (a, b))

let ge a b = le b a

let gt a b = lt b a

let not_ f =
  match f.fnode with
  | True -> fls
  | False -> tru
  | Not g -> g
  | Le _ | Lt _ | Eq _ | And _ | Or _ -> mkf (Not f)

let and_ fs =
  let fs = List.filter (fun f -> f.fnode <> True) fs in
  if List.exists (fun f -> f.fnode = False) fs then fls
  else match fs with [] -> tru | [ f ] -> f | _ -> mkf (And fs)

let or_ fs =
  let fs = List.filter (fun f -> f.fnode <> False) fs in
  if List.exists (fun f -> f.fnode = True) fs then tru
  else match fs with [] -> fls | [ f ] -> f | _ -> mkf (Or fs)

let implies a b = or_ [ not_ a; b ]

type assignment = (var * int) list

let lookup asg v =
  match List.find_opt (fun (w, _) -> w.vid = v.vid) asg with
  | Some (_, value) -> value
  | None -> raise Not_found

let rec eval_term asg t =
  match t.node with
  | Const v -> v
  | Var v -> lookup asg v
  | Add (a, b) -> eval_term asg a + eval_term asg b
  | Sub (a, b) -> eval_term asg a - eval_term asg b
  | Mulc (c, a) -> c * eval_term asg a
  | Neg a -> -eval_term asg a
  | Relu a -> max 0 (eval_term asg a)
  | Sign a -> if eval_term asg a >= 0 then 1 else -1
  | Max (a, b) -> max (eval_term asg a) (eval_term asg b)
  | Ite (c, a, b) -> if eval_formula asg c then eval_term asg a else eval_term asg b

and eval_formula asg f =
  match f.fnode with
  | True -> true
  | False -> false
  | Le (a, b) -> eval_term asg a <= eval_term asg b
  | Lt (a, b) -> eval_term asg a < eval_term asg b
  | Eq (a, b) -> eval_term asg a = eval_term asg b
  | Not g -> not (eval_formula asg g)
  | And fs -> List.for_all (eval_formula asg) fs
  | Or fs -> List.exists (eval_formula asg) fs

let vars_of_term t =
  let module M = Map.Make (Int) in
  let rec go_t acc (t : term) =
    match t.node with
    | Const _ -> acc
    | Var v -> M.add v.vid v acc
    | Add (a, b) | Sub (a, b) | Max (a, b) -> go_t (go_t acc a) b
    | Mulc (_, a) | Neg a | Relu a | Sign a -> go_t acc a
    | Ite (c, a, b) -> go_t (go_t (go_f acc c) a) b
  and go_f acc (f : formula) =
    match f.fnode with
    | True | False -> acc
    | Le (a, b) | Lt (a, b) | Eq (a, b) -> go_t (go_t acc a) b
    | Not g -> go_f acc g
    | And fs | Or fs -> List.fold_left go_f acc fs
  in
  List.map snd (M.bindings (go_t M.empty t))

let vars_of_formula f =
  let module M = Map.Make (Int) in
  let rec go_t acc (t : term) =
    match t.node with
    | Const _ -> acc
    | Var v -> M.add v.vid v acc
    | Add (a, b) | Sub (a, b) | Max (a, b) -> go_t (go_t acc a) b
    | Mulc (_, a) | Neg a | Relu a | Sign a -> go_t acc a
    | Ite (c, a, b) -> go_t (go_t (go_f acc c) a) b
  and go_f acc (f : formula) =
    match f.fnode with
    | True | False -> acc
    | Le (a, b) | Lt (a, b) | Eq (a, b) -> go_t (go_t acc a) b
    | Not g -> go_f acc g
    | And fs | Or fs -> List.fold_left go_f acc fs
  in
  List.map snd (M.bindings (go_f M.empty f))

let rec pp_term fmt t =
  match t.node with
  | Const v -> Format.fprintf fmt "%d" v
  | Var v -> Format.fprintf fmt "%s" v.name
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_term a pp_term b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_term a pp_term b
  | Mulc (c, a) -> Format.fprintf fmt "(%d * %a)" c pp_term a
  | Neg a -> Format.fprintf fmt "(- %a)" pp_term a
  | Relu a -> Format.fprintf fmt "relu(%a)" pp_term a
  | Sign a -> Format.fprintf fmt "sign(%a)" pp_term a
  | Max (a, b) -> Format.fprintf fmt "max(%a, %a)" pp_term a pp_term b
  | Ite (c, a, b) ->
      Format.fprintf fmt "(if %a then %a else %a)" pp_formula c pp_term a pp_term b

and pp_formula fmt f =
  match f.fnode with
  | True -> Format.fprintf fmt "true"
  | False -> Format.fprintf fmt "false"
  | Le (a, b) -> Format.fprintf fmt "(%a <= %a)" pp_term a pp_term b
  | Lt (a, b) -> Format.fprintf fmt "(%a < %a)" pp_term a pp_term b
  | Eq (a, b) -> Format.fprintf fmt "(%a = %a)" pp_term a pp_term b
  | Not g -> Format.fprintf fmt "!(%a)" pp_formula g
  | And fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
           pp_formula)
        fs
  | Or fs ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " | ")
           pp_formula)
        fs
