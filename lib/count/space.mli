(** The projected counting space and its cube decomposition.

    A counting query is a {!Smtlite.Term} formula plus a projection — the
    variable set whose assignments are counted. The space splits the
    projection into {b constrained} dimensions (variables the formula
    actually mentions) and {b free} variables: constant folding routinely
    erases noise variables from the encoding (a zero input gives its
    noise node a zero coefficient), and a variable the formula never
    mentions contributes a plain multiplicative factor of its range
    width. This is the degenerate-component case of component-aware
    counting — free variables are factored out rather than enumerated,
    which is what keeps wide-but-trivial ranges ([Util.Bigcount.Huge]
    territory) countable at all.

    A {!cube} is a sub-box of the constrained dimensions. Cubes produced
    by {!split} form a laminar family: any two distinct leaves are
    disjoint, which is what makes per-cube counts summable. *)

type dim = { var : Smtlite.Term.var; lo : int; hi : int }
(** One constrained dimension restricted to [lo, hi] (within the
    variable's own bounds). *)

type cube = dim array
(** A sub-box, aligned with {!dims} order. *)

type t = private {
  dims : Smtlite.Term.var array;  (** constrained projection variables *)
  free : Smtlite.Term.var array;  (** projected but absent from the formula *)
}

val of_projection :
  Smtlite.Term.formula -> project:Smtlite.Term.var list -> t
(** Split the projection against the formula's support. Raises
    [Invalid_argument] if the formula mentions a variable outside
    [project] — counting is unprojected: every formula variable must be
    counted, so the reported number is a cardinality, not a projection. *)

val full_cube : t -> cube

val size : cube -> Util.Bigcount.t
(** Number of points in the box (product of widths). *)

val free_factor : t -> Util.Bigcount.t
(** Product of the free variables' range widths. *)

val total : t -> Util.Bigcount.t
(** [size (full_cube t) * free_factor t] — the whole projected space. *)

val split : cube -> (cube * cube) option
(** Halve the box on its widest dimension (ties to the first);
    [None] when every dimension is a single point. *)

val formula : cube -> Smtlite.Term.formula
(** The range constraints of the box, omitting dimensions already at
    their variable's full range (those are enforced by the encoding). *)

val ranges : cube -> (int * int) array

val of_ranges : t -> (int * int) array -> (cube, string) result
(** Rebuild a cube from serialized ranges, validating arity and bounds. *)

val mem : cube -> int array -> bool
(** Point membership (values aligned with {!dims}). *)

val disjoint : cube -> cube -> bool
(** Boxes are disjoint iff some dimension's ranges are. *)

val assignment : t -> int array -> Smtlite.Term.assignment
(** Bind the constrained dimensions to the given values, for
    solver-independent re-evaluation of witnesses. *)
