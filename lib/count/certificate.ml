module T = Smtlite.Term
module B = Util.Bigcount
module J = Util.Json

type proof =
  | Unsat_cube of Cert.Verdict.t
  | Full_cube of Cert.Verdict.t
  | Enum_cube of { witnesses : int array list; completion : Cert.Verdict.t }

type entry = { ranges : (int * int) array; proof : proof }

type t = {
  vars : (string * int * int) array;
  free : (string * int * int) array;
  count : B.t;
  entries : entry list;
}

let version = "fannet-count-cert/1"

let var_triples vars =
  Array.map (fun (v : T.var) -> (v.T.name, v.T.lo, v.T.hi)) vars

let make ~(space : Space.t) ~count ~entries =
  {
    vars = var_triples space.Space.dims;
    free = var_triples space.Space.free;
    count;
    entries;
  }

(* ------------------------------------------------------------------ *)
(* JSON codec (deterministic field order)                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let as_int = function J.Int n -> n | _ -> bad "expected an integer"

let as_string = function J.String s -> s | _ -> bad "expected a string"

let as_list = function J.List l -> l | _ -> bad "expected an array"

let field name = function
  | J.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> bad "missing field %S" name)
  | _ -> bad "expected an object with field %S" name

let int_list_json l = J.List (List.map (fun n -> J.Int n) l)

let int_list j = List.map as_int (as_list j)

(* Cert.Verdict codec — same shape as the wire protocol's, duplicated
   here because lib/count sits below lib/serve in the dependency order
   and the certificate must be self-contained. *)
let verdict_json (c : Cert.Verdict.t) =
  let clauses cnf = J.List (List.map int_list_json cnf) in
  match c with
  | Cert.Verdict.Model { n_vars; cnf; assumptions; model } ->
      J.Obj
        [
          ("kind", J.String "model");
          ("n_vars", J.Int n_vars);
          ("cnf", clauses cnf);
          ("assumptions", int_list_json assumptions);
          ( "model",
            J.List
              (Array.to_list
                 (Array.map (fun b -> J.Int (if b then 1 else 0)) model)) );
        ]
  | Cert.Verdict.Refutation { n_vars; cnf; assumptions; proof } ->
      let step_json (s : Cert.Rup.step) =
        match s with
        | Cert.Rup.Learn c -> J.List [ J.String "l"; int_list_json c ]
        | Cert.Rup.Delete c -> J.List [ J.String "d"; int_list_json c ]
      in
      J.Obj
        [
          ("kind", J.String "refutation");
          ("n_vars", J.Int n_vars);
          ("cnf", clauses cnf);
          ("assumptions", int_list_json assumptions);
          ("proof", J.List (List.map step_json proof));
        ]

let verdict_of_json j : Cert.Verdict.t =
  let n_vars = as_int (field "n_vars" j) in
  let cnf = List.map int_list (as_list (field "cnf" j)) in
  let assumptions = int_list (field "assumptions" j) in
  match as_string (field "kind" j) with
  | "model" ->
      let model =
        Array.of_list
          (List.map
             (fun v ->
               match as_int v with
               | 0 -> false
               | 1 -> true
               | n -> bad "model bit %d" n)
             (as_list (field "model" j)))
      in
      Cert.Verdict.Model { n_vars; cnf; assumptions; model }
  | "refutation" ->
      let step s : Cert.Rup.step =
        match as_list s with
        | [ J.String "l"; c ] -> Cert.Rup.Learn (int_list c)
        | [ J.String "d"; c ] -> Cert.Rup.Delete (int_list c)
        | _ -> bad "malformed proof step"
      in
      Cert.Verdict.Refutation
        { n_vars; cnf; assumptions; proof = List.map step (as_list (field "proof" j)) }
  | s -> bad "unknown verdict kind %S" s

let ranges_json rs =
  J.List
    (Array.to_list (Array.map (fun (lo, hi) -> int_list_json [ lo; hi ]) rs))

let ranges_of_json j =
  Array.of_list
    (List.map
       (fun r ->
         match int_list r with
         | [ lo; hi ] -> (lo, hi)
         | _ -> bad "malformed range")
       (as_list j))

let witness_json w = int_list_json (Array.to_list w)

let proof_to_json = function
  | Unsat_cube c -> J.Obj [ ("kind", J.String "unsat"); ("cert", verdict_json c) ]
  | Full_cube c -> J.Obj [ ("kind", J.String "full"); ("cert", verdict_json c) ]
  | Enum_cube { witnesses; completion } ->
      J.Obj
        [
          ("kind", J.String "enum");
          ("witnesses", J.List (List.map witness_json witnesses));
          ("cert", verdict_json completion);
        ]

let proof_of_json_exn j =
  match as_string (field "kind" j) with
  | "unsat" -> Unsat_cube (verdict_of_json (field "cert" j))
  | "full" -> Full_cube (verdict_of_json (field "cert" j))
  | "enum" ->
      Enum_cube
        {
          witnesses =
            List.map
              (fun w -> Array.of_list (int_list w))
              (as_list (field "witnesses" j));
          completion = verdict_of_json (field "cert" j);
        }
  | s -> bad "unknown cube kind %S" s

let proof_of_json j =
  try Ok (proof_of_json_exn j) with Bad e -> Error e

let triple_json (name, lo, hi) = J.List [ J.String name; J.Int lo; J.Int hi ]

let triple_of_json j =
  match as_list j with
  | [ J.String name; J.Int lo; J.Int hi ] -> (name, lo, hi)
  | _ -> bad "malformed variable triple"

let to_json t =
  J.Obj
    [
      ("format", J.String version);
      ( "vars",
        J.List (Array.to_list (Array.map triple_json t.vars)) );
      ( "free",
        J.List (Array.to_list (Array.map triple_json t.free)) );
      ("count", B.to_json t.count);
      ( "cubes",
        J.List
          (List.map
             (fun e ->
               J.Obj
                 (("ranges", ranges_json e.ranges)
                 ::
                 (match proof_to_json e.proof with
                 | J.Obj kvs -> kvs
                 | _ -> assert false)))
             t.entries) );
    ]

let of_json j =
  try
    (match as_string (field "format" j) with
    | v when v = version -> ()
    | v -> bad "format %S (want %S)" v version);
    let triples f =
      Array.of_list (List.map triple_of_json (as_list (field f j)))
    in
    let count =
      match B.of_json (field "count" j) with
      | Ok c -> c
      | Error e -> bad "count: %s" e
    in
    let entries =
      List.map
        (fun e ->
          { ranges = ranges_of_json (field "ranges" e); proof = proof_of_json_exn e })
        (as_list (field "cubes" j))
    in
    Ok { vars = triples "vars"; free = triples "free"; count; entries }
  with Bad e -> Error e

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

let entry_mass cube_size = function
  | Unsat_cube _ -> B.zero
  | Full_cube _ -> cube_size
  | Enum_cube { witnesses; _ } -> B.of_int (List.length witnesses)

let describe t =
  let u = ref 0 and fl = ref 0 and e = ref 0 and w = ref 0 in
  List.iter
    (fun { proof; _ } ->
      match proof with
      | Unsat_cube _ -> incr u
      | Full_cube _ -> incr fl
      | Enum_cube { witnesses; _ } ->
          incr e;
          w := !w + List.length witnesses)
    t.entries;
  Printf.sprintf
    "%s: count %s over %d dims (+%d free); cubes: %d unsat, %d full, %d \
     enumerated (%d witnesses)"
    version (B.to_string t.count) (Array.length t.vars) (Array.length t.free)
    !u !fl !e !w

let check f ~project t =
  let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match Space.of_projection f ~project with
  | exception Invalid_argument e -> Error e
  | space ->
      (* 1. The certificate describes exactly this query's space. *)
      let* () =
        if var_triples space.Space.dims <> t.vars then
          err "constrained variables do not match the query"
        else if var_triples space.Space.free <> t.free then
          err "free variables do not match the query"
        else Ok ()
      in
      (* 2. Cubes are valid sub-boxes and pairwise disjoint. *)
      let* cubes =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match Space.of_ranges space e.ranges with
            | Ok c -> Ok ((c, e) :: acc)
            | Error m -> Error m)
          (Ok []) t.entries
      in
      let cubes = List.rev cubes in
      let arr = Array.of_list cubes in
      let n = Array.length arr in
      let* () =
        let clash = ref None in
        for i = 0 to n - 1 do
          for k = i + 1 to n - 1 do
            if
              !clash = None
              && n > 0
              && Array.length (fst arr.(i)) > 0
              && not (Space.disjoint (fst arr.(i)) (fst arr.(k)))
            then clash := Some (i, k)
          done
        done;
        match !clash with
        | Some (i, k) -> err "cubes %d and %d overlap" i k
        | None -> Ok ()
      in
      (* 3. Cube cardinalities cover the space exactly: disjoint boxes
         whose sizes sum to the full size tile it. *)
      let full = Space.size (Space.full_cube space) in
      let covered = B.sum (List.map (fun (c, _) -> Space.size c) cubes) in
      let* () =
        if B.equal covered full then Ok ()
        else
          err "cubes cover %s of %s points" (B.to_string covered)
            (B.to_string full)
      in
      (* 4. Per-cube evidence. *)
      let check_refutation what = function
        | Cert.Verdict.Refutation _ as c -> (
            match Cert.Verdict.check c with
            | Ok () -> Ok ()
            | Error e -> err "%s: %s" what e)
        | Cert.Verdict.Model _ -> err "%s: expected a refutation" what
      in
      let* () =
        List.fold_left
          (fun acc (i, (cube, e)) ->
            let* () = acc in
            match e.proof with
            | Unsat_cube c -> check_refutation (Printf.sprintf "cube %d (unsat)" i) c
            | Full_cube c ->
                let* () =
                  check_refutation (Printf.sprintf "cube %d (full)" i) c
                in
                (* Concrete spot check: a full cube's corner satisfies f. *)
                let corner = Array.map (fun d -> d.Space.lo) cube in
                if
                  Array.length cube = 0
                  || T.eval_formula (Space.assignment space corner) f
                then Ok ()
                else err "cube %d: claimed full but its corner falsifies the formula" i
            | Enum_cube { witnesses; completion } ->
                let* () =
                  check_refutation
                    (Printf.sprintf "cube %d (enum completion)" i)
                    completion
                in
                let tbl = Hashtbl.create 16 in
                List.fold_left
                  (fun acc w ->
                    let* () = acc in
                    if not (Space.mem cube w) then
                      err "cube %d: witness outside the cube" i
                    else if Hashtbl.mem tbl w then
                      err "cube %d: duplicate witness" i
                    else begin
                      Hashtbl.add tbl w ();
                      if T.eval_formula (Space.assignment space w) f then Ok ()
                      else err "cube %d: witness falsifies the formula" i
                    end)
                  (Ok ()) witnesses)
          (Ok ())
          (List.mapi (fun i ce -> (i, ce)) cubes)
      in
      (* 5. The masses reproduce the reported count. *)
      let mass =
        B.sum (List.map (fun (c, e) -> entry_mass (Space.size c) e.proof) cubes)
      in
      let claimed = B.mul mass (Space.free_factor space) in
      if B.equal claimed t.count then Ok ()
      else
        err "cube masses give %s but the certificate claims %s"
          (B.to_string claimed) (B.to_string t.count)
