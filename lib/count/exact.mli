(** Exact #SAT over a finite projection, by cube decomposition.

    DPLL-style counting on the CDCL core: the constrained space starts
    as one cube and a worklist refines it — a cube whose conjunction
    with the formula is UNSAT contributes zero, a cube the formula
    covers entirely (its conjunction with the negation is UNSAT)
    contributes its whole cardinality, a small mixed cube is counted by
    blocking-clause enumeration, and a large mixed cube is bisected on
    its widest dimension. All probes run as assumptions over one warm
    session (two compiled literals for the formula and its negation,
    one per cube range), so no probe pays a fresh Tseitin encoding.
    Projection variables the formula never mentions are factored out as
    a multiplier (see {!Space}), which also keeps counts exact-or-[Huge]
    rather than wrapped.

    With [~certify:true] every decided cube is re-derived on a fresh
    proof-traced session and the result carries a
    {!Certificate.t} ([fannet-count-cert/1]) that {!Certificate.check}
    re-validates independently. Certificate bytes are deterministic: the
    per-cube sessions depend only on (formula, cube), never on worker
    scheduling, so jobs=1 and jobs=N produce identical certificates.

    Budgets are polled per cube and threaded into every solve; on
    exhaustion the decided mass so far is returned with
    [status = Exhausted] and — when [~checkpoint] is set — the decided
    cubes and the pending frontier are persisted (format
    [fannet-ckpt/1], kind ["count"]), so a resumed run continues from
    the frontier instead of recounting. Checkpointing forces sequential
    operation ([jobs] is ignored).

    Every mode starts from the same fixed-target root decomposition (the
    root cube halved into up to 16 top cubes), and cube decisions are
    semantic — Sat/Unsat under disjoint-cube assumptions, unaffected by
    warm-session history — so the decided partition, the count, and the
    certificate bytes are identical across [jobs] settings and across
    checkpoint interrupt/resume boundaries. *)

type status = Decided | Exhausted of Resil.Budget.reason

type result = {
  count : Util.Bigcount.t;  (** decided mass × free factor *)
  total : Util.Bigcount.t;  (** cardinality of the whole projected space *)
  cubes : int;              (** decided cubes *)
  splits : int;
  solver_calls : int;
  certificate : Certificate.t option;
      (** present iff [certify] and fully decided *)
  status : status;
}

val count :
  ?budget:Resil.Budget.t ->
  ?certify:bool ->
  ?enum_limit:int ->
  ?jobs:int ->
  ?checkpoint:string ->
  ?ckpt_key:string ->
  ?ckpt_every:int ->
  Smtlite.Term.formula ->
  project:Smtlite.Term.var list ->
  result
(** Count the assignments of [project] satisfying the formula.

    [certify] (default false) attaches a [fannet-count-cert/1]
    certificate; [enum_limit] (default 64) is the largest cube counted
    by enumeration instead of bisection; [jobs] (default 1) counts
    disjoint subtrees on a {!Util.Parallel} pool; [checkpoint] persists
    progress every [ckpt_every] (default 32) decided cubes under
    identity [ckpt_key] (a resume with a different key raises
    [Invalid_argument], as does a torn checkpoint file).

    Raises [Invalid_argument] if the formula mentions variables outside
    [project]. *)
