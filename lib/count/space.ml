module T = Smtlite.Term
module B = Util.Bigcount

type dim = { var : T.var; lo : int; hi : int }

type cube = dim array

type t = { dims : T.var array; free : T.var array }

let of_projection f ~project =
  (* Dedup the projection by vid, preserving order. *)
  let seen = Hashtbl.create 16 in
  let project =
    List.filter
      (fun (v : T.var) ->
        if Hashtbl.mem seen v.T.vid then false
        else begin
          Hashtbl.add seen v.T.vid ();
          true
        end)
      project
  in
  let support = Hashtbl.create 16 in
  List.iter
    (fun (v : T.var) ->
      if not (Hashtbl.mem seen v.T.vid) then
        invalid_arg
          (Printf.sprintf
             "Count: formula variable %S is not in the projection" v.T.name);
      Hashtbl.replace support v.T.vid ())
    (T.vars_of_formula f);
  let dims, free =
    List.partition (fun (v : T.var) -> Hashtbl.mem support v.T.vid) project
  in
  { dims = Array.of_list dims; free = Array.of_list free }

let full_cube t =
  Array.map (fun (v : T.var) -> { var = v; lo = v.T.lo; hi = v.T.hi }) t.dims

let width d = d.hi - d.lo + 1

let size cube =
  Array.fold_left (fun acc d -> B.mul acc (B.of_int (width d))) B.one cube

let free_factor t =
  Array.fold_left
    (fun acc (v : T.var) -> B.mul acc (B.of_int (v.T.hi - v.T.lo + 1)))
    B.one t.free

let total t = B.mul (size (full_cube t)) (free_factor t)

let split cube =
  let best = ref (-1) and best_w = ref 1 in
  Array.iteri
    (fun i d ->
      let w = width d in
      if w > !best_w then begin
        best := i;
        best_w := w
      end)
    cube;
  if !best < 0 then None
  else
    let i = !best in
    let d = cube.(i) in
    let mid = d.lo + ((d.hi - d.lo) / 2) in
    let left = Array.copy cube and right = Array.copy cube in
    left.(i) <- { d with hi = mid };
    right.(i) <- { d with lo = mid + 1 };
    Some (left, right)

let formula cube =
  let cs =
    Array.to_list cube
    |> List.concat_map (fun d ->
           if d.lo = d.var.T.lo && d.hi = d.var.T.hi then []
           else
             let v = T.of_var d.var in
             [ T.le (T.const d.lo) v; T.le v (T.const d.hi) ])
  in
  T.and_ cs

let ranges cube = Array.map (fun d -> (d.lo, d.hi)) cube

let of_ranges t rs =
  if Array.length rs <> Array.length t.dims then
    Error "cube arity does not match the space"
  else
    let bad = ref None in
    let cube =
      Array.mapi
        (fun i (lo, hi) ->
          let v = t.dims.(i) in
          if lo > hi || lo < v.T.lo || hi > v.T.hi then
            bad :=
              Some
                (Printf.sprintf "cube range [%d,%d] outside %S:[%d,%d]" lo hi
                   v.T.name v.T.lo v.T.hi);
          { var = v; lo; hi })
        rs
    in
    match !bad with None -> Ok cube | Some e -> Error e

let mem cube values =
  Array.length values = Array.length cube
  && Array.for_all2 (fun d v -> d.lo <= v && v <= d.hi) cube values

let disjoint a b =
  let n = Array.length a in
  let rec go i =
    i < n && (a.(i).hi < b.(i).lo || b.(i).hi < a.(i).lo || go (i + 1))
  in
  go 0

let assignment t values =
  Array.to_list (Array.map2 (fun v x -> (v, x)) t.dims values)
