(** ApproxMC-style approximate model counting with (ε, δ) guarantees.

    The projected model space is hashed by random XOR parity constraints
    over the projection variables' compiled bits ({!Smtlite.Solve.var_bits}
    guarantees distinct values have distinct bit patterns, so the parities
    are a pairwise-independent hash family). Each round samples one level
    per bit from a seeded {!Util.Rng} stream, gallops for the smallest
    number of cumulative levels m whose residual cell holds at most
    [pivot = ⌈9.84·(1 + 1/ε)²⌉] models (counted by guarded blocking-clause
    enumeration over one warm session — dropping the round's activation
    guard retires its blocking clauses, so rounds never poison each
    other), and estimates [cell · 2^m]. Round estimates are aggregated by
    median-of-medians over ⌈t/2⌉-majority rounds, where t is the smallest
    odd round count whose binomial failure tail (per-round failure
    probability 0.36) is at most δ.

    Guarantee: with probability at least 1 − δ the estimate is within a
    multiplicative (1 + ε) of the true count. When the whole constrained
    space already holds at most [pivot] models the counter short-circuits
    to plain bounded enumeration — the result is then exact ([exact =
    true]) and deterministic regardless of seed. *)

type result = {
  estimate : Util.Bigcount.t;  (** aggregated estimate × free factor *)
  exact : bool;  (** the pivot shortcut fired: [estimate] is exact *)
  rounds : int;  (** XOR rounds that produced an estimate *)
  solver_calls : int;
  status : Exact.status;
}

val count :
  ?budget:Resil.Budget.t ->
  ?epsilon:float ->
  ?delta:float ->
  ?seed:int ->
  Smtlite.Term.formula ->
  project:Smtlite.Term.var list ->
  result
(** Estimate the number of assignments of [project] satisfying the
    formula. [epsilon] (default 0.8) is the tolerance, [delta] (default
    0.2) the failure probability, [seed] (default 0) the hash-family
    seed. On budget exhaustion the rounds finished so far are aggregated
    and returned with [status = Exhausted].

    Raises [Invalid_argument] if the formula mentions variables outside
    [project], if [epsilon] is not positive, or if [delta] is outside
    (0, 1). *)
