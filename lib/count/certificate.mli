(** [fannet-count-cert/1] — checkable exact-count certificates.

    An exact count is certified by a partition of the constrained
    counting space into decided cubes, each carrying evidence of its
    kind:

    - an {b UNSAT} cube holds a {!Cert.Verdict.Refutation} — a DRUP
      refutation of [formula ∧ cube], checkable by the independent
      [lib/cert] RUP checker;
    - a {b full} cube holds a refutation of [¬formula ∧ cube] (no model
      of the cube escapes the formula, so the cube contributes its whole
      cardinality);
    - an {b enumerated} cube holds its explicit witness set plus a
      completion refutation of [formula ∧ cube ∧ blocking clauses]
      proving no further witness exists.

    {!check} re-validates a certificate without the solver: the cube set
    must partition the constrained space exactly (pairwise disjoint,
    cardinalities summing to the space size), every witness must lie in
    its cube, be distinct, and satisfy the formula under the
    solver-independent {!Smtlite.Term.eval_formula}, every refutation
    must pass {!Cert.Verdict.check}, and the cube masses times the
    free-variable factor must reproduce the reported count. As with the
    existing verdict certificates, the RUP refutations certify the
    bit-blasted CNF the encoder produced — encoder trust is the one
    residual assumption, shared with every certificate in this repo. *)

type proof =
  | Unsat_cube of Cert.Verdict.t
  | Full_cube of Cert.Verdict.t
  | Enum_cube of { witnesses : int array list; completion : Cert.Verdict.t }

type entry = { ranges : (int * int) array; proof : proof }

type t = {
  vars : (string * int * int) array;  (** constrained dims: name, lo, hi *)
  free : (string * int * int) array;  (** factored-out projection vars *)
  count : Util.Bigcount.t;            (** the certified total *)
  entries : entry list;
}

val version : string
(** ["fannet-count-cert/1"]. *)

val make :
  space:Space.t -> count:Util.Bigcount.t -> entries:entry list -> t

val check :
  Smtlite.Term.formula ->
  project:Smtlite.Term.var list ->
  t ->
  (unit, string) result
(** Full re-validation against the original query (see above). Never
    raises. *)

val describe : t -> string

val to_json : t -> Util.Json.t
(** Deterministic encoding — certificate bytes are cache-stable. *)

val of_json : Util.Json.t -> (t, string) result

val proof_to_json : proof -> Util.Json.t
(** Exposed for checkpoint payloads, which persist decided cubes. *)

val proof_of_json : Util.Json.t -> (proof, string) result
