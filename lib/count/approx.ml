module T = Smtlite.Term
module Solve = Smtlite.Solve
module B = Util.Bigcount
module Rng = Util.Rng

type result = {
  estimate : B.t;
  exact : bool;
  rounds : int;
  solver_calls : int;
  status : Exact.status;
}

exception Out_of_budget of Resil.Budget.reason

let m_rounds = Obs.Metrics.counter "count.approx_rounds"

let m_calls = Obs.Metrics.counter "count.solver_calls"

(* pivot = ⌈9.84 · (1 + 1/ε)²⌉ (ApproxMC's cell-size threshold). *)
let pivot_for epsilon =
  int_of_float (ceil (9.84 *. (1.0 +. (1.0 /. epsilon)) ** 2.0))

(* Smallest odd t whose chance of ⌈t/2⌉ failures at per-round failure
   probability 0.36 is at most δ, computed from the exact binomial tail
   (capped at 99 rounds — enough for δ down to ~1e-9). *)
let rounds_for delta =
  let tail t p k =
    (* P[Bin(t, p) >= k], pmf computed iteratively. *)
    let q = 1.0 -. p in
    let pmf = ref (q ** float_of_int t) in
    let acc = ref (if k <= 0 then !pmf else 0.0) in
    for i = 0 to t - 1 do
      pmf := !pmf *. float_of_int (t - i) /. float_of_int (i + 1) *. p /. q;
      if i + 1 >= k then acc := !acc +. !pmf
    done;
    !acc
  in
  let rec go t =
    if t >= 99 then 99
    else if tail t 0.36 ((t + 1) / 2) <= delta then t
    else go (t + 2)
  in
  go 1

(* ------------------------------------------------------------------ *)

type engine = {
  space : Space.t;
  budget : Resil.Budget.t option;
  session : Solve.session;
  a_f : Solve.assumption;
  dims : T.var list;
  bits : Sat.Lit.t list;  (** all projected bits, the hash domain *)
  mutable calls : int;
}

let solve_a e assumptions =
  e.calls <- e.calls + 1;
  Obs.Metrics.incr m_calls;
  match Solve.solve ~assumptions ?budget:e.budget e.session with
  | Solve.Unknown r -> raise (Out_of_budget r)
  | o -> o

(* Count models under [assumptions], stopping at [limit + 1]. Blocking
   clauses go under a fresh guard that is dropped on return, leaving the
   session exactly as constrained as before. *)
let bounded_count e ~assumptions ~limit =
  let guard = Solve.fresh_assumption e.session in
  let rec go n =
    if n > limit then n
    else
      match solve_a e (guard :: assumptions) with
      | Solve.Unsat -> n
      | Solve.Sat _ ->
          Solve.block_under e.session ~guard e.dims;
          go (n + 1)
      | Solve.Unknown _ -> assert false
  in
  go 0

(* One XOR level: each projected bit joins the parity with probability
   1/2, and the required parity is a fair coin. *)
let sample_level e rng =
  let subset = List.filter (fun _ -> Rng.bool rng) e.bits in
  Solve.assume_parity e.session subset ~parity:(Rng.bool rng)

(* One round: sample a full ladder of levels, then gallop for the
   smallest cumulative level count m whose cell is non-empty and at most
   [pivot] big. The cell size is monotone non-increasing in m, so the
   search moves toward the crossing; a direction flip means the crossing
   fell between "empty" and "too big" — a failed round. *)
let run_round e ~pivot ~start_m rng =
  let nbits = List.length e.bits in
  let levels = Array.init nbits (fun _ -> sample_level e rng) in
  let cell m =
    let assumptions =
      e.a_f :: List.init m (fun i -> levels.(i))
    in
    bounded_count e ~assumptions ~limit:pivot
  in
  let rec search m dir =
    let c = cell m in
    if c = 0 then
      if m <= 1 || dir > 0 then None else search (m - 1) (-1)
    else if c > pivot then
      if m >= nbits || dir < 0 then None else search (m + 1) 1
    else Some (m, c)
  in
  search (min (max 1 start_m) (max 1 nbits)) 0

let median compare l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

(* Median of group-of-5 medians — the aggregation is robust to up to
   just-under-half bad rounds, matching the 0.36 per-round failure rate
   assumed by {!rounds_for}. *)
let median_of_medians l =
  let rec groups = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let g, rest = take 5 [] l in
        g :: groups rest
  in
  match l with
  | [] -> invalid_arg "median_of_medians: empty"
  | l when List.length l <= 5 -> median B.compare l
  | l -> median B.compare (List.map (median B.compare) (groups l))

let count ?budget ?(epsilon = 0.8) ?(delta = 0.2) ?(seed = 0) f ~project =
  (* Negated comparisons so NaN is rejected as well: [nan <= 0.0] is
     false, so the positive-form checks would silently accept it. *)
  if not (epsilon > 0.0) then
    invalid_arg "Approx.count: epsilon must be positive";
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Approx.count: delta must be in (0, 1)";
  let space = Space.of_projection f ~project in
  let session = Solve.open_session T.tru in
  let a_f = Solve.assume session f in
  let dims = Array.to_list space.Space.dims in
  Solve.declare session dims;
  Solve.prioritize session dims;
  let bits = List.concat_map (Solve.var_bits session) dims in
  let e = { space; budget; session; a_f; dims; bits; calls = 0 } in
  let pivot = pivot_for epsilon in
  let finish ~estimates ~exact ~rounds ~status =
    let estimate =
      match estimates with
      | [] -> B.zero
      | l -> B.mul (median_of_medians l) (Space.free_factor space)
    in
    { estimate; exact; rounds; solver_calls = e.calls; status }
  in
  match bounded_count e ~assumptions:[ a_f ] ~limit:pivot with
  | exception Out_of_budget r ->
      finish ~estimates:[] ~exact:false ~rounds:0 ~status:(Exact.Exhausted r)
  | c when c <= pivot ->
      (* The whole constrained space fits in one cell: exact, no hashing. *)
      finish
        ~estimates:[ B.of_int c ]
        ~exact:true ~rounds:0 ~status:Exact.Decided
  | _ ->
      let t = rounds_for delta in
      let master = Rng.create seed in
      let estimates = ref [] and nrounds = ref 0 and prev_m = ref 1 in
      let status = ref Exact.Decided in
      (try
         for _round = 1 to t do
           (match Option.bind budget Resil.Budget.check with
           | Some r -> raise (Out_of_budget r)
           | None -> ());
           let rng = Rng.split master in
           match run_round e ~pivot ~start_m:!prev_m rng with
           | None -> ()
           | Some (m, c) ->
               prev_m := m;
               incr nrounds;
               Obs.Metrics.incr m_rounds;
               estimates := B.mul (B.of_int c) (B.pow2 m) :: !estimates
         done
       with Out_of_budget r -> status := Exact.Exhausted r);
      finish ~estimates:(List.rev !estimates) ~exact:false ~rounds:!nrounds
        ~status:!status
