module T = Smtlite.Term
module Solve = Smtlite.Solve
module B = Util.Bigcount
module J = Util.Json

type status = Decided | Exhausted of Resil.Budget.reason

type result = {
  count : B.t;
  total : B.t;
  cubes : int;
  splits : int;
  solver_calls : int;
  certificate : Certificate.t option;
  status : status;
}

exception Out_of_budget of Resil.Budget.reason

let m_cubes = Obs.Metrics.counter "count.cubes"

let m_splits = Obs.Metrics.counter "count.splits"

let m_calls = Obs.Metrics.counter "count.solver_calls"

(* ------------------------------------------------------------------ *)
(* Search engine: one warm session, every probe an assumption          *)
(* ------------------------------------------------------------------ *)

type engine = {
  space : Space.t;
  f : T.formula;
  budget : Resil.Budget.t option;
  certify : bool;
  enum_limit : int;
  search : Solve.session;
  a_f : Solve.assumption;
  a_nf : Solve.assumption;
  mutable calls : int;
  mutable splits : int;
}

type kind = K_unsat | K_full | K_enum of int array list

type decided = { cube : Space.cube; kind : kind; proof : Certificate.proof option }

let dims_list (space : Space.t) = Array.to_list space.Space.dims

let make_engine ?budget ~certify ~enum_limit f space =
  let search = Solve.open_session T.tru in
  let a_f = Solve.assume search f in
  let a_nf = Solve.assume search (T.not_ f) in
  Solve.declare search (dims_list space);
  Solve.prioritize search (dims_list space);
  { space; f; budget; certify; enum_limit; search; a_f; a_nf; calls = 0; splits = 0 }

let solve_e e assumptions =
  e.calls <- e.calls + 1;
  Obs.Metrics.incr m_calls;
  match Solve.solve ~assumptions ?budget:e.budget e.search with
  | Solve.Unknown r -> raise (Out_of_budget r)
  | o -> o

let witness_of (space : Space.t) model =
  Array.map (fun v -> T.lookup model v) space.Space.dims

(* Decide one cube on the warm session, or ask for a split. Blocking
   clauses added while enumerating are permanent but harmless: they
   exclude points of THIS cube only, and the cube family is laminar, so
   no other live cube contains them. *)
let decide e cube =
  let a_c = Solve.assume e.search (Space.formula cube) in
  match solve_e e [ a_c; e.a_f ] with
  | Solve.Unsat -> `Decided K_unsat
  | Solve.Unknown _ -> assert false
  | Solve.Sat m0 ->
      if Array.length cube = 0 then
        (* The zero-dimensional cube is the single empty point; a Sat
           answer makes it a full cube (there is nothing to block). *)
        `Decided K_full
      else if B.compare (Space.size cube) (B.of_int e.enum_limit) <= 0 then begin
        let rec enum acc =
          Solve.block e.search (dims_list e.space);
          match solve_e e [ a_c; e.a_f ] with
          | Solve.Unsat -> List.rev acc
          | Solve.Sat m -> enum (witness_of e.space m :: acc)
          | Solve.Unknown _ -> assert false
        in
        `Decided (K_enum (enum [ witness_of e.space m0 ]))
      end
      else
        match solve_e e [ a_c; e.a_nf ] with
        | Solve.Unsat -> `Decided K_full
        | Solve.Sat _ -> `Split
        | Solve.Unknown _ -> assert false

(* ------------------------------------------------------------------ *)
(* Per-cube certification: a fresh proof-traced session per decided    *)
(* cube, so certificate bytes depend only on (formula, cube) — never   *)
(* on worker scheduling or warm-session history.                       *)
(* ------------------------------------------------------------------ *)

let certify_cube e cube kind =
  let open_traced g =
    let trace = Cert.Proof.create () in
    let s = Solve.open_session ~trace g in
    Solve.declare s (dims_list e.space);
    Solve.prioritize s (dims_list e.space);
    s
  in
  let solve_c s =
    e.calls <- e.calls + 1;
    Obs.Metrics.incr m_calls;
    match Solve.solve_certified ?budget:e.budget s with
    | Solve.Unknown r, _ -> raise (Out_of_budget r)
    | o, c -> (o, c)
  in
  let refutation what s =
    match solve_c s with
    | Solve.Unsat, Some c -> c
    | Solve.Unsat, None -> failwith ("count: no certificate for " ^ what)
    | (Solve.Sat _ | Solve.Unknown _), _ ->
        failwith ("count: certifier disagrees with the search on " ^ what)
  in
  let cf = Space.formula cube in
  match kind with
  | K_unsat ->
      Certificate.Unsat_cube
        (refutation "an unsat cube" (open_traced (T.and_ [ e.f; cf ])))
  | K_full ->
      Certificate.Full_cube
        (refutation "a full cube" (open_traced (T.and_ [ T.not_ e.f; cf ])))
  | K_enum search_witnesses ->
      let s = open_traced (T.and_ [ e.f; cf ]) in
      let rec enum acc =
        match solve_c s with
        | Solve.Sat m, _ ->
            let w = witness_of e.space m in
            Solve.block s (dims_list e.space);
            enum (w :: acc)
        | Solve.Unsat, Some c -> (List.rev acc, c)
        | Solve.Unsat, None -> failwith "count: no completion certificate"
        | Solve.Unknown _, _ -> assert false
      in
      let witnesses, completion = enum [] in
      if List.length witnesses <> List.length search_witnesses then
        failwith "count: certifier witness count disagrees with the search";
      Certificate.Enum_cube { witnesses; completion }

(* ------------------------------------------------------------------ *)
(* Worklist                                                            *)
(* ------------------------------------------------------------------ *)

let run_worklist e ~frontier ~decided ~on_decided =
  let rec loop () =
    match !frontier with
    | [] -> Decided
    | cube :: rest -> (
        match Option.bind e.budget Resil.Budget.check with
        | Some r -> Exhausted r
        | None -> (
            match decide e cube with
            | exception Out_of_budget r -> Exhausted r
            | `Split -> (
                e.splits <- e.splits + 1;
                Obs.Metrics.incr m_splits;
                match Space.split cube with
                | Some (a, b) ->
                    frontier := a :: b :: rest;
                    loop ()
                | None -> failwith "count: mixed single-point cube")
            | `Decided kind -> (
                match
                  if e.certify then Some (certify_cube e cube kind) else None
                with
                | exception Out_of_budget r -> Exhausted r
                | proof ->
                    frontier := rest;
                    decided := { cube; kind; proof } :: !decided;
                    Obs.Metrics.incr m_cubes;
                    on_decided ();
                    loop ())))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Checkpointing (fannet-ckpt/1, kind "count")                         *)
(* ------------------------------------------------------------------ *)

let ckpt_kind = "count"

let ranges_json rs =
  J.List
    (Array.to_list
       (Array.map (fun (lo, hi) -> J.List [ J.Int lo; J.Int hi ]) rs))

let ranges_of_json j =
  match j with
  | J.List l ->
      Ok
        (Array.of_list
           (List.map
              (function
                | J.List [ J.Int lo; J.Int hi ] -> (lo, hi)
                | _ -> raise Exit)
              l))
  | _ -> Error "malformed ranges"

let decided_json d =
  let base = [ ("ranges", ranges_json (Space.ranges d.cube)) ] in
  let base =
    base
    @
    match d.kind with
    | K_unsat -> [ ("kind", J.String "u") ]
    | K_full -> [ ("kind", J.String "f") ]
    | K_enum ws ->
        [
          ("kind", J.String "e");
          ( "witnesses",
            J.List
              (List.map
                 (fun w ->
                   J.List (Array.to_list (Array.map (fun v -> J.Int v) w)))
                 ws) );
        ]
  in
  let base =
    base
    @
    match d.proof with
    | None -> []
    | Some p -> [ ("proof", Certificate.proof_to_json p) ]
  in
  J.Obj base

let save_ckpt ~path ~key ~decided ~frontier =
  let data =
    J.Obj
      [
        ("key", J.String key);
        ("decided", J.List (List.rev_map decided_json decided));
        ( "frontier",
          J.List (List.map (fun c -> ranges_json (Space.ranges c)) frontier) );
      ]
  in
  Resil.Ckpt.save ~kind:ckpt_kind ~path data

let load_ckpt ~path ~key space =
  if not (Sys.file_exists path) then None
  else
    let fail fmt =
      Printf.ksprintf (fun s -> invalid_arg ("count: checkpoint " ^ path ^ ": " ^ s)) fmt
    in
    match Resil.Ckpt.load ~kind:ckpt_kind ~path with
    | Error e -> fail "%s" e
    | Ok data -> (
        let member name =
          match J.member name data with
          | Some v -> v
          | None -> fail "missing field %S" name
        in
        (match member "key" with
        | J.String k when k = key -> ()
        | J.String _ -> fail "belongs to a different count query"
        | _ -> fail "malformed key");
        let cube_of j =
          match ranges_of_json j with
          | Ok rs -> (
              match Space.of_ranges space rs with
              | Ok c -> c
              | Error e -> fail "%s" e)
          | Error e -> fail "%s" e
          | exception Exit -> fail "malformed ranges"
        in
        let decided_of j =
          let cube =
            match J.member "ranges" j with
            | Some r -> cube_of r
            | None -> fail "decided cube without ranges"
          in
          let kind =
            match J.member "kind" j with
            | Some (J.String "u") -> K_unsat
            | Some (J.String "f") -> K_full
            | Some (J.String "e") -> (
                match J.member "witnesses" j with
                | Some (J.List ws) ->
                    K_enum
                      (List.map
                         (function
                           | J.List vs ->
                               Array.of_list
                                 (List.map
                                    (function J.Int v -> v | _ -> fail "witness")
                                    vs)
                           | _ -> fail "witness")
                         ws)
                | _ -> fail "enum cube without witnesses")
            | _ -> fail "decided cube without kind"
          in
          let proof =
            match J.member "proof" j with
            | None -> None
            | Some p -> (
                match Certificate.proof_of_json p with
                | Ok pr -> Some pr
                | Error e -> fail "%s" e)
          in
          { cube; kind; proof }
        in
        match (member "decided", member "frontier") with
        | J.List ds, J.List fs ->
            Some (List.map decided_of ds, List.map cube_of fs)
        | _ -> fail "malformed payload")

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let mass_of d =
  match d.kind with
  | K_unsat -> B.zero
  | K_full -> Space.size d.cube
  | K_enum ws -> B.of_int (List.length ws)

let assemble space ~certify ~status ~decided ~calls ~splits =
  (* [decided] arrives newest-first; entries are reported oldest-first so
     the certificate order matches decision order. *)
  let decided = List.rev decided in
  let mass = B.sum (List.map mass_of decided) in
  let count = B.mul mass (Space.free_factor space) in
  let certificate =
    match status with
    | Decided when certify ->
        let entries =
          List.map
            (fun d ->
              {
                Certificate.ranges = Space.ranges d.cube;
                proof = Option.get d.proof;
              })
            decided
        in
        Some (Certificate.make ~space ~count ~entries)
    | Decided | Exhausted _ -> None
  in
  {
    count;
    total = Space.total space;
    cubes = List.length decided;
    splits;
    solver_calls = calls;
    certificate;
    status;
  }

(* Deterministic root decomposition: repeatedly halve the largest cube
   until [target] pieces (or nothing splits). Every mode — sequential,
   parallel, checkpointed — starts from the SAME fixed-target frontier,
   and cube decisions are semantic (Sat/Unsat under disjoint-cube
   assumptions, unaffected by session history), so the decided partition
   and therefore the certificate bytes do not depend on [jobs] or on
   interrupt/resume boundaries. *)
let top_target = 16

let top_split space ~target =
  let rec grow cubes n =
    if n >= target then cubes
    else
      let best = ref (-1) and best_size = ref B.one and i = ref 0 in
      List.iter
        (fun c ->
          let s = Space.size c in
          if B.compare s !best_size > 0 then begin
            best := !i;
            best_size := s
          end;
          incr i)
        cubes;
      if !best < 0 then cubes
      else
        match Space.split (List.nth cubes !best) with
        | None -> cubes
        | Some (a, b) ->
            let cubes =
              List.concat
                (List.mapi
                   (fun k c -> if k = !best then [ a; b ] else [ c ])
                   cubes)
            in
            grow cubes (n + 1)
  in
  grow [ Space.full_cube space ] 1

let count ?budget ?(certify = false) ?(enum_limit = 64) ?(jobs = 1)
    ?checkpoint ?(ckpt_key = "") ?(ckpt_every = 32) f ~project =
  let space = Space.of_projection f ~project in
  let enum_limit = max 1 enum_limit in
  let ckpt_every = max 1 ckpt_every in
  let tops = top_split space ~target:top_target in
  match checkpoint with
  | Some path ->
      (* Checkpointed runs are sequential: the frontier is a single
         worklist, saved every [ckpt_every] decided cubes and at every
         exit, so a resumed run continues from the decided-cube
         frontier. *)
      let e = make_engine ?budget ~certify ~enum_limit f space in
      let decided, frontier =
        match load_ckpt ~path ~key:ckpt_key space with
        | Some (ds, fs) -> (ref (List.rev ds), ref fs)
        | None -> (ref [], ref tops)
      in
      let since = ref 0 in
      let save () = save_ckpt ~path ~key:ckpt_key ~decided:!decided ~frontier:!frontier in
      let on_decided () =
        incr since;
        if !since >= ckpt_every then begin
          since := 0;
          save ()
        end
      in
      let status = run_worklist e ~frontier ~decided ~on_decided in
      save ();
      assemble space ~certify ~status ~decided:!decided ~calls:e.calls
        ~splits:e.splits
  | None ->
      if jobs <= 1 then begin
        let e = make_engine ?budget ~certify ~enum_limit f space in
        let decided = ref [] and frontier = ref tops in
        let status =
          run_worklist e ~frontier ~decided ~on_decided:(fun () -> ())
        in
        assemble space ~certify ~status ~decided:!decided ~calls:e.calls
          ~splits:e.splits
      end
      else begin
        let tops = Array.of_list tops in
        let results =
          Util.Parallel.map ~jobs
            (fun top ->
              let e = make_engine ?budget ~certify ~enum_limit f space in
              let decided = ref [] and frontier = ref [ top ] in
              let status =
                run_worklist e ~frontier ~decided ~on_decided:(fun () -> ())
              in
              (!decided, status, e.calls, e.splits))
            tops
        in
        let decided =
          (* Each per-top list is newest-first; prepending in top order
             yields newest-first overall, so the final [List.rev] in
             [assemble] reports tops in decision order — the same order
             the sequential worklist produces. *)
          Array.fold_left (fun acc (ds, _, _, _) -> ds @ acc) [] results
        in
        let status =
          Array.fold_left
            (fun acc (_, s, _, _) ->
              match (acc, s) with
              | Decided, s -> s
              | (Exhausted _ as x), _ -> x)
            Decided results
        in
        let calls =
          Array.fold_left (fun acc (_, _, c, _) -> acc + c) 0 results
        in
        let splits =
          Array.fold_left (fun acc (_, _, _, s) -> acc + s) 0 results
        in
        assemble space ~certify ~status ~decided ~calls ~splits
      end
