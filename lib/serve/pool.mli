(** Persistent work-stealing worker pool for the daemon.

    {!Util.Parallel} is batch-shaped: it spawns domains for one
    combinator call and joins them before returning. A daemon needs the
    opposite lifetime — worker domains that outlive any single request —
    so this module keeps [workers] resident domains fed from per-worker
    queues: a submitted job lands on one worker's queue (round-robin)
    and an idle worker steals from a busy sibling's queue before
    sleeping, the same discipline as [Util.Parallel]'s deques at query
    rather than item granularity.

    Jobs run at most one per worker at a time, so anything a job keeps
    in {!Domain.DLS} — warm {!Fannet.Warm} sessions above all — is
    reused across queries that land on the same worker and never shared
    between two running jobs.

    A job that raises does not kill its worker: {!run} transports the
    exception back to the submitter; fire-and-forget {!submit} jobs must
    catch their own. *)

type t

val create : workers:int -> t
(** Spawn [workers] (>= 1, clamped) resident domains. *)

val workers : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job. Raises [Invalid_argument] after {!shutdown} began. *)

val run : t -> (unit -> 'a) -> 'a
(** Submit [f], block the calling thread until it finished on a worker,
    and return its result (re-raising its exception). The calling thread
    sleeps on a condition variable — it does not spin. *)

val steals : t -> int
(** Jobs a worker took from a sibling's queue rather than its own. *)

val shutdown : t -> unit
(** Drain: no new submissions are accepted, queued jobs still run,
    running jobs finish, then every worker domain is joined. Idempotent;
    safe to call from any thread except a pool worker. *)
