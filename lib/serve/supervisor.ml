(* Worker-process supervision. See supervisor.mli for the contract.

   Parent-side shape: one slot per shard. A slot is Up (live child +
   control socket + reader thread), waiting out a restart backoff,
   sitting behind an open circuit breaker, or Down (pre-spawn /
   stopped). Queries acquire the slot's connection (respawning lazily
   when the backoff has elapsed), register a waiter under a fresh rid,
   write one frame and sleep on a condition variable; the reader thread
   routes replies back by rid and turns EOF into death bookkeeping.

   Workers are not forked from the daemon directly. fork(2) from a
   multi-domain-capable OCaml process that has grown dozens of live
   systhreads clones runtime bookkeeping for threads that do not exist
   in the child; a child that then calls Domain.spawn can reach a
   stop-the-world section whose rendezvous never completes — compute
   wedges mid-GC with no OCaml-level deadline able to fire. The first
   worker generation (forked before the daemon creates any thread) was
   reliably fine and every wedge was a respawn, so the fix is to make
   every generation fork from a quiet process: a dedicated single-
   threaded spawner, forked once at [create] time, forks all workers on
   request and each worker connects back to the parent over a private
   unix socket. *)

module F = Resil.Faultpoint

type policy = {
  backoff_base_s : float;
  backoff_max_s : float;
  storm_limit : int;
  storm_window_s : float;
  cooloff_s : float;
}

let default_policy =
  {
    backoff_base_s = 0.05;
    backoff_max_s = 2.0;
    storm_limit = 5;
    storm_window_s = 10.0;
    cooloff_s = 1.0;
  }

type outcome = Pending | Got of Protocol.reply | Died

type waiter = {
  wm : Mutex.t;
  wc : Condition.t;
  mutable outcome : outcome;
}

type conn = {
  pid : int;
  fd : Unix.file_descr;
  send_lock : Mutex.t;
  (* Set under [send_lock] before [fd] is closed: a sender that checks
     it under the same lock can never write to a closed — and possibly
     already reused — descriptor. *)
  mutable dead : bool;
  pending : (int, waiter) Hashtbl.t;
  pending_lock : Mutex.t;
  mutable reader : Thread.t option;
}

type state =
  | Up of conn
  | Restarting of float  (* not before this wall-clock time *)
  | Circuit_open of float  (* closed again at this wall-clock time *)
  | Down

type slot = {
  idx : int;
  lock : Mutex.t;
  mutable state : state;
  mutable death_times : float list;  (* recent, newest first *)
}

(* The fork server: a single-threaded child that forks workers on
   request so their runtimes are never cloned from the busy parent. *)
type hatch = {
  spawner_pid : int;
  spawner_fd : Unix.file_descr;  (* spawn requests; EOF retires the spawner *)
  nursery_fd : Unix.file_descr;  (* listener fresh workers connect back to *)
  nursery_path : string;
  sock_dir : string;
  hatch_lock : Mutex.t;  (* serialises request + accept, so at most one
                            spawn is in flight and hellos cannot cross *)
}

type t = {
  procs : int;
  workers : int;
  policy : policy;
  execute : Nn.Qnet.t -> budget:Resil.Budget.t -> Protocol.query -> Protocol.answer;
  slots : slot array;
  nets : (string, string) Hashtbl.t;  (* digest -> serialised network *)
  nets_lock : Mutex.t;
  rid : int Atomic.t;
  restarts : int Atomic.t;
  deaths : int Atomic.t;
  stopping : bool Atomic.t;
  hatch : hatch;
}

let procs t = t.procs
let restarts t = Atomic.get t.restarts
let deaths t = Atomic.get t.deaths

let shard t digest =
  Int64.to_int
    (Int64.rem
       (Int64.logand (Resil.Ckpt.fnv1a64 digest) Int64.max_int)
       (Int64.of_int t.procs))

(* fork(2) copies the whole fd table, and the forking process's table
   holds entries its children must not: a dup of a worker's control
   socket masks the EOF that worker's death must deliver, a dup of a
   client connection keeps the peer readable after the parent hangs up,
   and a journal dup shares its file offset with the parent's appends.
   Close everything except [keep] and the stdio triple, by enumerating
   /proc/self/fd when available (the array is read before any close, so
   the directory fd's own entry going stale is harmless) and by
   sweeping a generous range otherwise. *)
let close_all_but ~keep =
  let keep_ns = List.map (fun fd -> (Obj.magic fd : int)) keep in
  let close_n n =
    if n > 2 && not (List.mem n keep_ns) then
      try Unix.close (Obj.magic n : Unix.file_descr) with Unix.Unix_error _ -> ()
  in
  match Sys.readdir "/proc/self/fd" with
  | entries ->
      Array.iter
        (fun e -> match int_of_string_opt e with Some n -> close_n n | None -> ())
        entries
  | exception Sys_error _ ->
      for n = 3 to 4095 do
        close_n n
      done

(* ---------- worker (grandchild) ---------- *)

(* Runs in a worker process; never returns. The worker is a fork of the
   single-threaded spawner, so it starts from a quiet runtime and can
   safely build its own domain pool; warm sessions then accumulate per
   shard exactly as they did per daemon before supervision. *)
let worker_main ~execute ~workers fd : 'a =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* the CLI installs stop-the-daemon handlers in the parent; a worker
     must die plainly, not run the daemon's shutdown *)
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_default with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigchld Sys.Signal_default with Invalid_argument _ -> ());
  let pool = Pool.create ~workers in
  let nets : (string, Nn.Qnet.t) Hashtbl.t = Hashtbl.create 8 in
  let nets_lock = Mutex.create () in
  let send_lock = Mutex.create () in
  let send env =
    Mutex.lock send_lock;
    (try Wire.write_frame fd (Protocol.encode_reply env) with _ -> ());
    Mutex.unlock send_lock
  in
  let handle_query rid digest query (budget : Protocol.budget_spec) =
    Pool.submit pool (fun () ->
        let reply =
          let net =
            Mutex.lock nets_lock;
            let r = Hashtbl.find_opt nets digest in
            Mutex.unlock nets_lock;
            r
          in
          match net with
          | None -> Protocol.Server_error ("unknown network digest " ^ digest)
          | Some net -> (
              let b =
                Resil.Budget.create ?timeout_s:budget.Protocol.timeout_s
                  ?conflicts:budget.Protocol.conflicts ()
              in
              match execute net ~budget:b query with
              | answer -> Protocol.Answer { cached = false; answer }
              | exception Invalid_argument msg ->
                  Protocol.Protocol_error ("unsupported query: " ^ msg)
              | exception e -> Protocol.Server_error (Printexc.to_string e))
        in
        send { Protocol.rid; reply })
  in
  (* Defense in depth: park in bounded select(2) slices rather than one
     indefinite read, so the receiving thread re-enters the runtime a
     few times a second even while idle. In a healthy worker this is
     invisible; if the runtime's domain-0 service machinery is ever
     degraded (the failure mode supervised forking exists to avoid),
     the periodic re-entry keeps stop-the-world sections serviced. *)
  let rec await_frame () =
    match Unix.select [ fd ] [] [] 0.05 with
    | [], _, _ -> await_frame ()
    | _ -> Wire.read_frame fd
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> await_frame ()
  in
  let rec loop () =
    match await_frame () with
    | Error _ ->
        (* parent went away (or stream damage we cannot resync from) *)
        Unix._exit 0
    | Ok payload ->
        (match Protocol.decode_request payload with
        | Error e -> send { rid = 0; reply = Protocol.Protocol_error e }
        | Ok { Protocol.rid; request } -> (
            match request with
            | Protocol.Ping -> send { rid; reply = Protocol.Pong }
            | Protocol.Metrics ->
                send
                  { rid; reply = Protocol.Protocol_error "workers serve no metrics" }
            | Protocol.Shutdown ->
                send { rid; reply = Protocol.Bye };
                (try Unix.close fd with _ -> ());
                Unix._exit 0
            | Protocol.Set_faults { spec } -> (
                F.clear ();
                match if spec <> "" then F.arm spec with
                | () -> send { rid; reply = Protocol.Pong }
                | exception Invalid_argument msg ->
                    send { rid; reply = Protocol.Server_error msg })
            | Protocol.Load { network } -> (
                match Nn.Qnet.of_string network with
                | Error e ->
                    send { rid; reply = Protocol.Server_error ("bad network: " ^ e) }
                | Ok net ->
                    let digest =
                      Digest.to_hex (Digest.string (Nn.Qnet.to_string net))
                    in
                    Mutex.lock nets_lock;
                    Hashtbl.replace nets digest net;
                    Mutex.unlock nets_lock;
                    send { rid; reply = Protocol.Loaded { digest } })
            | Protocol.Query { digest; query; budget } ->
                (* the kill schedule strikes here: the query is already
                   in flight from the client's point of view, and the
                   parent must turn the EOF into a typed reply *)
                if F.hit "serve.worker.kill" then Unix._exit 137;
                handle_query rid digest query budget));
        loop ()
  in
  loop ()

(* Fresh out of the spawner's fork: shed inherited descriptors (a kept
   dup of the request pipe would hold the spawner open past the
   daemon), connect back to the parent and identify this process so the
   parent can route the connection to the right slot. *)
let worker_boot ~execute ~workers ~nursery_path ~slot_idx : 'a =
  close_all_but ~keep:[];
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX nursery_path) with
  | () -> ()
  | exception _ -> Unix._exit 111);
  (match
     Wire.write_frame fd
       (Printf.sprintf "hello %d %d" slot_idx (Unix.getpid ()))
   with
  | () -> ()
  | exception _ -> Unix._exit 111);
  worker_main ~execute ~workers fd

(* ---------- spawner (fork server child) ---------- *)

(* The one process in the tree whose only job is fork(2). It is forked
   at [create] time — before the daemon binds its listener, opens the
   store, or creates a single thread — and it never creates threads or
   domains of its own, so every worker it forks begins life as a copy
   of a quiet single-threaded runtime no matter how hot the daemon is
   when the restart happens. Faultpoint tables armed before [create]
   are frozen into it and inherited by every worker generation. *)
let spawner_main ~execute ~workers ~nursery_path req_fd : 'a =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_default with Invalid_argument _ -> ());
  (* workers are the spawner's children; let the kernel reap them *)
  (try Sys.set_signal Sys.sigchld Sys.Signal_ignore with Invalid_argument _ -> ());
  close_all_but ~keep:[ req_fd ];
  let buf = Bytes.create 2 in
  let rec read_req off =
    if off = 2 then
      Some ((Char.code (Bytes.get buf 0) lsl 8) lor Char.code (Bytes.get buf 1))
    else
      match Unix.read req_fd buf off (2 - off) with
      | 0 -> None
      | k -> read_req (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_req off
      | exception _ -> None
  in
  let rec loop () =
    match read_req 0 with
    | None -> Unix._exit 0  (* request pipe closed: daemon is gone *)
    | Some slot_idx ->
        (match Unix.fork () with
        | 0 ->
            (try Unix.close req_fd with _ -> ());
            worker_boot ~execute ~workers ~nursery_path ~slot_idx
        | _ -> ()
        | exception Unix.Unix_error _ ->
            (* EAGAIN et al.: the parent times out on the nursery and
               backs off exactly as it would for a crashed worker *)
            ());
        loop ()
  in
  loop ()

let fresh_sock_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go attempt =
    if attempt > 1000 then failwith "Supervisor: cannot create a socket directory";
    let path =
      Filename.concat base
        (Printf.sprintf "fannet-sup-%d-%d" (Unix.getpid ()) attempt)
    in
    match Unix.mkdir path 0o700 with
    | () -> path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (attempt + 1)
  in
  go 0

let hatch_open ~execute ~workers =
  let sock_dir = fresh_sock_dir () in
  let nursery_path = Filename.concat sock_dir "nursery.sock" in
  let nursery_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let cleanup () =
    (try Unix.close nursery_fd with _ -> ());
    (try Unix.unlink nursery_path with _ -> ());
    try Unix.rmdir sock_dir with _ -> ()
  in
  (try
     Unix.bind nursery_fd (Unix.ADDR_UNIX nursery_path);
     Unix.listen nursery_fd 16
   with e ->
     cleanup ();
     raise e);
  let req_parent, req_child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 -> spawner_main ~execute ~workers ~nursery_path req_child
  | pid ->
      (try Unix.close req_child with _ -> ());
      {
        spawner_pid = pid;
        spawner_fd = req_parent;
        nursery_fd;
        nursery_path;
        sock_dir;
        hatch_lock = Mutex.create ();
      }
  | exception e ->
      (try Unix.close req_parent with _ -> ());
      (try Unix.close req_child with _ -> ());
      cleanup ();
      raise e

(* ---------- parent ---------- *)

let next_rid t = Atomic.fetch_and_add t.rid 1

let send_request conn (env : Protocol.req_envelope) =
  Mutex.lock conn.send_lock;
  let ok =
    (not conn.dead)
    &&
    try
      Wire.write_frame conn.fd (Protocol.encode_request env);
      true
    with _ -> false
  in
  Mutex.unlock conn.send_lock;
  ok

let fail_pending conn =
  Mutex.lock conn.pending_lock;
  let ws = Hashtbl.fold (fun _ w acc -> w :: acc) conn.pending [] in
  Hashtbl.reset conn.pending;
  Mutex.unlock conn.pending_lock;
  List.iter
    (fun w ->
      Mutex.lock w.wm;
      (match w.outcome with Pending -> w.outcome <- Died | _ -> ());
      Condition.signal w.wc;
      Mutex.unlock w.wm)
    ws

(* Retire [pid]. Workers are the spawner's children, not ours, so
   waitpid reports ECHILD and the kernel (via the spawner's ignored
   SIGCHLD) reaps the corpse; the poll-then-SIGKILL path still applies
   to the spawner itself, which is our child. *)
let reap pid =
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () < deadline then begin
          Thread.delay 0.01;
          poll ()
        end
        else begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid)
        end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> poll ()
  in
  poll ()

let record_death t slot =
  Atomic.incr t.deaths;
  Mutex.lock slot.lock;
  let now = Unix.gettimeofday () in
  slot.death_times <-
    now
    :: List.filter (fun ts -> now -. ts < t.policy.storm_window_s) slot.death_times;
  let recent = List.length slot.death_times in
  (if Atomic.get t.stopping then slot.state <- Down
   else if recent > t.policy.storm_limit then
     slot.state <- Circuit_open (now +. t.policy.cooloff_s)
   else
     let backoff =
       Float.min t.policy.backoff_max_s
         (t.policy.backoff_base_s *. (2.0 ** float_of_int (recent - 1)))
     in
     slot.state <- Restarting (now +. backoff));
  Mutex.unlock slot.lock

let reader t slot conn () =
  let rec loop () =
    match Wire.read_frame conn.fd with
    | Ok payload -> (
        match Protocol.decode_reply payload with
        | Ok { Protocol.rid; reply } ->
            let w =
              Mutex.lock conn.pending_lock;
              let w = Hashtbl.find_opt conn.pending rid in
              Hashtbl.remove conn.pending rid;
              Mutex.unlock conn.pending_lock;
              w
            in
            (match w with
            | Some w ->
                Mutex.lock w.wm;
                w.outcome <- Got reply;
                Condition.signal w.wc;
                Mutex.unlock w.wm
            | None -> () (* fire-and-forget load/shutdown ack *));
            loop ()
        | Error _ ->
            (* a worker writing garbage on its own control stream is as
               dead to us as one that closed it *)
            death ())
    | Error _ -> death ()
  and death () =
    (* Ordering is load-bearing. (1) Take the slot out of [Up] first, so
       no new query acquires the dead connection. (2) Mark the conn dead
       and close its fd under [send_lock]: a sender that raced past
       acquire can no longer write — the kernel may reuse the fd number
       immediately, and a late write would land in an unrelated stream.
       (3) Fail the waiters; any waiter registered after this snapshot
       belongs to a sender whose [send_request] will now return false
       and error out on its own. (4) Reap last — it can take seconds and
       must not extend the window where stale sends are possible. *)
    record_death t slot;
    Mutex.lock conn.send_lock;
    conn.dead <- true;
    (try Unix.close conn.fd with _ -> ());
    Mutex.unlock conn.send_lock;
    fail_pending conn;
    reap conn.pid
  in
  loop ()

(* Ask the spawner for a fresh worker for [slot] and wait for it to
   connect back. Called with [slot.lock] held; [hatch_lock] keeps one
   spawn in flight at a time so an accepted hello always belongs to the
   newest request — a straggler from an abandoned earlier spawn carries
   a stale slot index and is closed (its process sees EOF and exits). *)
let spawn t slot =
  let h = t.hatch in
  Mutex.lock h.hatch_lock;
  let result =
    let req = Bytes.create 2 in
    Bytes.set req 0 (Char.chr ((slot.idx lsr 8) land 0xff));
    Bytes.set req 1 (Char.chr (slot.idx land 0xff));
    match Unix.write h.spawner_fd req 0 2 with
    | exception e -> Error ("spawner unreachable: " ^ Printexc.to_string e)
    | _ ->
        let deadline = Unix.gettimeofday () +. 5.0 in
        let rec await () =
          let left = deadline -. Unix.gettimeofday () in
          if left <= 0. then Error "worker did not report back in time"
          else
            match Unix.select [ h.nursery_fd ] [] [] left with
            | [], _, _ -> Error "worker did not report back in time"
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
            | _ -> (
                match Unix.accept h.nursery_fd with
                | exception Unix.Unix_error _ -> await ()
                | fd, _ -> (
                    (* bound the hello read: a half-connected straggler
                       must not hold the hatch lock open forever *)
                    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
                     with Unix.Unix_error _ -> ());
                    match Wire.read_frame fd with
                    | exception _ ->
                        (try Unix.close fd with _ -> ());
                        await ()
                    | Error _ ->
                        (try Unix.close fd with _ -> ());
                        await ()
                    | Ok hello -> (
                        match
                          Scanf.sscanf hello "hello %d %d" (fun a b -> (a, b))
                        with
                        | idx, pid when idx = slot.idx ->
                            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.
                             with Unix.Unix_error _ -> ());
                            Ok (fd, pid)
                        | _ | (exception _) ->
                            (try Unix.close fd with _ -> ());
                            await ())))
        in
        await ()
  in
  Mutex.unlock h.hatch_lock;
  match result with
  | Error e -> failwith e
  | Ok (parent_fd, pid) ->
      let conn =
        {
          pid;
          fd = parent_fd;
          send_lock = Mutex.create ();
          dead = false;
          pending = Hashtbl.create 16;
          pending_lock = Mutex.create ();
          reader = None;
        }
      in
      (* Fault-table replay: the worker boots with whatever was armed
         when the spawner froze at [create]; bring it to the parent's
         current view, so arming or clearing between restarts steers
         every later generation (live workers keep the table they were
         last sent). Stream ordering puts this ahead of any query. *)
      ignore
        (send_request conn
           {
             rid = next_rid t;
             request = Protocol.Set_faults { spec = F.snapshot () };
           });
      (* replay the shard's networks before the slot goes Up: the
         control stream orders these ahead of any later query *)
      Mutex.lock t.nets_lock;
      let owned =
        Hashtbl.fold
          (fun digest network acc ->
            if shard t digest = slot.idx then (digest, network) :: acc else acc)
          t.nets []
      in
      Mutex.unlock t.nets_lock;
      List.iter
        (fun (_, network) ->
          ignore
            (send_request conn
               { rid = next_rid t; request = Protocol.Load { network } }))
        owned;
      conn.reader <- Some (Thread.create (reader t slot conn) ());
      conn

let respawn_locked t slot ~count_restart =
  match spawn t slot with
  | conn ->
      if count_restart then Atomic.incr t.restarts;
      slot.state <- Up conn;
      Ok conn
  | exception e ->
      (* spawner unreachable or worker never connected: back off like a
         death *)
      slot.state <- Restarting (Unix.gettimeofday () +. t.policy.backoff_base_s);
      Error (Printf.sprintf "worker %d spawn failed: %s" slot.idx (Printexc.to_string e))

let acquire_conn t slot =
  Mutex.lock slot.lock;
  let now = Unix.gettimeofday () in
  let r =
    if Atomic.get t.stopping then Error "daemon stopping"
    else
      match slot.state with
      | Up conn -> Ok conn
      | Down -> respawn_locked t slot ~count_restart:false
      | Restarting ready when now >= ready ->
          respawn_locked t slot ~count_restart:true
      | Restarting _ ->
          Error
            (Printf.sprintf "worker %d restarting after crash; retry shortly"
               slot.idx)
      | Circuit_open until when now >= until ->
          slot.death_times <- [];
          respawn_locked t slot ~count_restart:true
      | Circuit_open _ ->
          Error
            (Printf.sprintf
               "worker %d unavailable: restart storm, circuit open; retry later"
               slot.idx)
  in
  Mutex.unlock slot.lock;
  r

let query t ~digest ~query ~budget =
  let slot = t.slots.(shard t digest) in
  match acquire_conn t slot with
  | Error e -> Error e
  | Ok conn -> (
      let rid = next_rid t in
      let w = { wm = Mutex.create (); wc = Condition.create (); outcome = Pending } in
      Mutex.lock conn.pending_lock;
      Hashtbl.replace conn.pending rid w;
      Mutex.unlock conn.pending_lock;
      if
        not
          (send_request conn
             { rid; request = Protocol.Query { digest; query; budget } })
      then begin
        Mutex.lock conn.pending_lock;
        Hashtbl.remove conn.pending rid;
        Mutex.unlock conn.pending_lock;
        Error
          (Printf.sprintf "worker %d unreachable (crashed mid-send)" slot.idx)
      end
      else begin
        Mutex.lock w.wm;
        while (match w.outcome with Pending -> true | _ -> false) do
          Condition.wait w.wc w.wm
        done;
        let o = w.outcome in
        Mutex.unlock w.wm;
        match o with
        | Got reply -> Ok reply
        | Died ->
            Error (Printf.sprintf "worker %d died mid-query" slot.idx)
        | Pending -> assert false
      end)

let load t ~digest ~network =
  Mutex.lock t.nets_lock;
  Hashtbl.replace t.nets digest network;
  Mutex.unlock t.nets_lock;
  let slot = t.slots.(shard t digest) in
  Mutex.lock slot.lock;
  let conn = match slot.state with Up conn -> Some conn | _ -> None in
  Mutex.unlock slot.lock;
  match conn with
  | None -> () (* replay covers it at the next (re)spawn *)
  | Some conn ->
      ignore
        (send_request conn { rid = next_rid t; request = Protocol.Load { network } })

let create ?(policy = default_policy) ~procs ~workers ~execute () =
  let procs = Stdlib.max 1 procs in
  let workers = Stdlib.max 1 workers in
  (* children must not inherit a SIGPIPE death sentence *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* the spawner forks here, before the eager spawns below create any
     reader threads — keep it that way *)
  let hatch = hatch_open ~execute ~workers in
  let t =
    {
      procs;
      workers;
      policy;
      execute;
      slots =
        Array.init procs (fun idx ->
            { idx; lock = Mutex.create (); state = Down; death_times = [] });
      nets = Hashtbl.create 8;
      nets_lock = Mutex.create ();
      rid = Atomic.make 1;
      restarts = Atomic.make 0;
      deaths = Atomic.make 0;
      stopping = Atomic.make false;
      hatch;
    }
  in
  Array.iter
    (fun slot ->
      Mutex.lock slot.lock;
      (match respawn_locked t slot ~count_restart:false with
      | Ok _ -> ()
      | Error _ -> () (* lazily retried by the first query *));
      Mutex.unlock slot.lock)
    t.slots;
  t

let stop t =
  if Atomic.compare_and_set t.stopping false true then begin
    let conns =
      Array.to_list t.slots
      |> List.filter_map (fun slot ->
             Mutex.lock slot.lock;
             let c = match slot.state with Up conn -> Some conn | _ -> None in
             slot.state <- Down;
             Mutex.unlock slot.lock;
             c)
    in
    List.iter
      (fun conn ->
        ignore
          (send_request conn { rid = next_rid t; request = Protocol.Shutdown });
        (* EOF wakes the child's read loop even mid-compute; its reader
           here then reaps it (SIGKILL after the grace) *)
        try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    List.iter
      (fun conn -> match conn.reader with Some th -> Thread.join th | None -> ())
      conns;
    (* retire the spawner: EOF on the request pipe is its shutdown *)
    let h = t.hatch in
    (try Unix.close h.spawner_fd with _ -> ());
    reap h.spawner_pid;
    (try Unix.close h.nursery_fd with _ -> ());
    (try Unix.unlink h.nursery_path with _ -> ());
    try Unix.rmdir h.sock_dir with _ -> ()
  end
