(* Append-only verdict journal, format fannet-store/1. See store.mli
   for the format and recovery contract. *)

module J = Util.Json
module F = Resil.Faultpoint

let header = "fannet-store/1\n"

type stats = {
  appends : int;
  compactions : int;
  recovered : int;
  dropped : int;
  truncated_bytes : int;
  live_bytes : int;
  file_bytes : int;
}

type t = {
  path : string;
  lock : Mutex.t;
  mutable oc : out_channel option;  (* None once closed or disabled *)
  live : (string, int) Hashtbl.t;   (* key -> live payload bytes *)
  mutable live_bytes : int;
  mutable file_bytes : int;
  mutable appends : int;
  mutable compactions : int;
  recovered : int;
  dropped : int;
  truncated_bytes : int;
}

let path t = t.path

let frame payload =
  Printf.sprintf "%d %016Lx\n%s\n" (String.length payload)
    (Resil.Ckpt.fnv1a64 payload) payload

let payload_of ~key answer =
  J.to_string
    (J.Obj [ ("key", J.String key); ("answer", Protocol.answer_json answer) ])

(* One semantic gate for both recovery and compaction: the payload must
   decode, the answer must be cacheable, and a certified answer must
   pass the independent lib/cert checker — persisted bytes are
   untrusted. *)
let decode_payload payload =
  match J.of_string payload with
  | Error _ -> None
  | Ok j -> (
      match j with
      | J.Obj kvs -> (
          match (List.assoc_opt "key" kvs, List.assoc_opt "answer" kvs) with
          | Some (J.String key), Some aj -> (
              match Protocol.answer_of_json aj with
              | Error _ -> None
              | Ok a ->
                  if not (Protocol.answer_decided a) then None
                  else
                    let cert_ok =
                      match a with
                      | Protocol.Certified { cert = Some c; _ } -> (
                          match Cert.Verdict.check c with
                          | Ok () -> true
                          | Error _ -> false)
                      | _ -> true
                    in
                    if cert_ok then Some (key, a) else None)
          | _ -> None)
      | _ -> None)

(* Scan journal [contents]: returns records in append order (including
   duplicates), the byte offset of the end of the last well-framed
   record, and how many well-framed records were semantically dropped.
   Any framing damage — short header line, bad length, checksum
   mismatch, missing trailing newline — is the torn tail: scanning
   stops and the caller truncates back to [good]. *)
let scan contents =
  if String.length contents < String.length header
     || String.sub contents 0 (String.length header) <> header
  then Error "missing or foreign fannet-store/1 header"
  else begin
    let len = String.length contents in
    let records = ref [] and dropped = ref 0 in
    let pos = ref (String.length header) in
    let good = ref !pos in
    let torn = ref false in
    while (not !torn) && !pos < len do
      match String.index_from_opt contents !pos '\n' with
      | None -> torn := true
      | Some nl -> (
          let hdr = String.sub contents !pos (nl - !pos) in
          match String.index_opt hdr ' ' with
          | None -> torn := true
          | Some sp -> (
              let plen = int_of_string_opt (String.sub hdr 0 sp) in
              let sum =
                try
                  Some
                    (Int64.of_string
                       ("0x" ^ String.sub hdr (sp + 1) (String.length hdr - sp - 1)))
                with _ -> None
              in
              match (plen, sum) with
              | Some plen, Some sum when plen >= 0 && nl + 1 + plen + 1 <= len ->
                  let payload = String.sub contents (nl + 1) plen in
                  if contents.[nl + 1 + plen] <> '\n'
                     || Resil.Ckpt.fnv1a64 payload <> sum
                  then torn := true
                  else begin
                    (match decode_payload payload with
                    | Some (key, a) -> records := (key, a, plen) :: !records
                    | None -> incr dropped);
                    pos := nl + 1 + plen + 1;
                    good := !pos
                  end
              | _ -> torn := true))
    done;
    Ok (List.rev !records, !good, !dropped)
  end

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* Last-wins per key, preserving first-appearance order. *)
let last_wins records =
  let tbl = Hashtbl.create 64 and order = ref [] in
  List.iter
    (fun (key, a, plen) ->
      if not (Hashtbl.mem tbl key) then order := key :: !order;
      Hashtbl.replace tbl key (a, plen))
    records;
  List.rev_map (fun key -> let a, plen = Hashtbl.find tbl key in (key, a, plen))
    !order
  |> List.rev

let open_ ~path =
  try
    if not (Sys.file_exists path) then begin
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 path in
      output_string oc header;
      close_out oc
    end;
    let contents = read_file path in
    let contents =
      (* a zero-byte file (crash between create and header) is fresh *)
      if contents = "" then begin
        let oc = open_out_gen [ Open_wronly; Open_trunc; Open_binary ] 0o644 path in
        output_string oc header;
        close_out oc;
        header
      end
      else contents
    in
    match scan contents with
    | Error e -> Error (Printf.sprintf "store %s: %s" path e)
    | Ok (records, good, dropped) ->
        let truncated = String.length contents - good in
        if truncated > 0 then Unix.truncate path good;
        let live_records = last_wins records in
        let live = Hashtbl.create 64 in
        let live_bytes = ref 0 in
        List.iter
          (fun (key, _, plen) ->
            Hashtbl.replace live key plen;
            live_bytes := !live_bytes + plen)
          live_records;
        let oc =
          open_out_gen [ Open_append; Open_binary ] 0o644 path
        in
        let t =
          {
            path;
            lock = Mutex.create ();
            oc = Some oc;
            live;
            live_bytes = !live_bytes;
            file_bytes = good;
            appends = 0;
            compactions = 0;
            recovered = List.length live_records;
            dropped;
            truncated_bytes = truncated;
          }
        in
        Ok (t, List.map (fun (key, a, _) -> (key, a)) live_records)
  with
  | Sys_error e -> Error (Printf.sprintf "store %s: %s" path e)
  | Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "store %s: %s" path (Unix.error_message e))

(* Caller holds the lock. Rewrites the journal to its live records
   through a temp file + atomic rename (Ckpt discipline): a crash at
   any point leaves either the old journal or the new one, never a
   hybrid. *)
let compact_locked t oc =
  flush oc;
  close_out oc;
  t.oc <- None;
  let contents = read_file t.path in
  let records = match scan contents with Ok (r, _, _) -> r | Error _ -> [] in
  let live_records = last_wins records in
  let tmp = t.path ^ ".tmp" in
  let tc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string tc header;
  List.iter
    (fun (key, a, _) -> output_string tc (frame (payload_of ~key a)))
    live_records;
  close_out tc;
  Unix.rename tmp t.path;
  t.file_bytes <- (Unix.stat t.path).Unix.st_size;
  t.compactions <- t.compactions + 1;
  t.oc <- Some (open_out_gen [ Open_append; Open_binary ] 0o644 t.path)

let compaction_due t =
  t.file_bytes > max 65536 (2 * t.live_bytes)

let append t ~key answer =
  Mutex.lock t.lock;
  (match t.oc with
  | None -> ()  (* closed or disabled: daemon keeps serving from memory *)
  | Some oc -> (
      try
        let payload = payload_of ~key answer in
        let record = frame payload in
        if F.hit "serve.store.torn" then begin
          (* simulate a crash mid-write: half the record reaches disk,
             then the store goes dark *)
          let half = String.length record / 2 in
          output_string oc (String.sub record 0 half);
          flush oc;
          close_out oc;
          t.oc <- None
        end
        else begin
          output_string oc record;
          flush oc;
          t.appends <- t.appends + 1;
          t.file_bytes <- t.file_bytes + String.length record;
          (match Hashtbl.find_opt t.live key with
          | Some old -> t.live_bytes <- t.live_bytes - old
          | None -> ());
          Hashtbl.replace t.live key (String.length payload);
          t.live_bytes <- t.live_bytes + String.length payload;
          if compaction_due t then compact_locked t oc
        end
      with Sys_error _ | Unix.Unix_error _ ->
        (* disk trouble: disable, never take the daemon down *)
        (match t.oc with
        | Some oc -> (try close_out_noerr oc with _ -> ())
        | None -> ());
        t.oc <- None));
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  (match t.oc with
  | None -> ()
  | Some oc ->
      (try
         flush oc;
         close_out oc
       with Sys_error _ -> ());
      t.oc <- None);
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      appends = t.appends;
      compactions = t.compactions;
      recovered = t.recovered;
      dropped = t.dropped;
      truncated_bytes = t.truncated_bytes;
      live_bytes = t.live_bytes;
      file_bytes = t.file_bytes;
    }
  in
  Mutex.unlock t.lock;
  s
