(* The daemon: accept thread + one systhread per connection for I/O,
   and compute either on a resident in-process Pool of worker domains
   (procs = 0) or on supervised worker processes (procs > 0, see
   Supervisor) — crash-only mode, where the accept loop stays
   single-domain and small and a worker crash is an event, not an
   outage. Systhreads all share one domain, so blocking socket reads
   cost nothing in compute terms; the solver work runs where warm
   Fannet.Warm sessions accumulate (a pool worker domain's DLS, or a
   worker process's own pool). *)

type addr = Unix_path of string | Tcp of string * int

type config = {
  addr : addr;
  workers : int;
  cap : int;
  cache_cap_bytes : int;
  timeout_ceiling_s : float option;
  procs : int;
  store_path : string option;
}

let default_config =
  let workers = Util.Parallel.default_jobs () in
  {
    addr = Unix_path "fannetd.sock";
    workers;
    cap = 4 * workers;
    cache_cap_bytes = 16 * 1024 * 1024;
    timeout_ceiling_s = None;
    procs = 0;
    store_path = None;
  }

(* Obs mirrors of the always-on atomics; recording is a no-op while the
   registry is disabled. *)
let m_submitted = Obs.Metrics.counter "serve.submitted"
let m_served = Obs.Metrics.counter "serve.served"
let m_rejected = Obs.Metrics.counter "serve.rejected"
let m_failed = Obs.Metrics.counter "serve.failed"
let m_cache_hits = Obs.Metrics.counter "serve.cache.hits"
let m_cache_misses = Obs.Metrics.counter "serve.cache.misses"
let m_store_recovered = Obs.Metrics.counter "serve.store.recovered"
let m_store_dropped = Obs.Metrics.counter "serve.store.dropped"
let m_worker_deaths = Obs.Metrics.counter "serve.worker.deaths"
let m_worker_restarts = Obs.Metrics.counter "serve.worker.restarts"
let h_query = Obs.Metrics.histogram "serve.query_s"

(* Compute backend: the legacy in-process pool, or the supervised
   worker-process fleet. *)
type compute = In_process of Pool.t | Supervised of Supervisor.t

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : addr;
  unlink_path : string option;
  compute : compute;
  store : Store.t option;
  cache : Protocol.answer Lru.t;
  nets : (string, Nn.Qnet.t) Hashtbl.t;
  nets_lock : Mutex.t;
  stop_token : Resil.Budget.token;
  stopping : bool Atomic.t;
  stopped_flag : bool Atomic.t;
  in_flight : int Atomic.t;
  submitted : int Atomic.t;
  served : int Atomic.t;
  rejected : int Atomic.t;
  failed : int Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable threads : Thread.t list; (* under conns_lock *)
  mutable accept_thread : Thread.t option;
  done_m : Mutex.t;
  done_c : Condition.t;
}

let address t = t.bound
let stopped t = Atomic.get t.stopped_flag

let stats t : Protocol.server_stats =
  let hits, misses, _ = Lru.stats t.cache in
  let networks =
    Mutex.lock t.nets_lock;
    let n = Hashtbl.length t.nets in
    Mutex.unlock t.nets_lock;
    n
  in
  {
    submitted = Atomic.get t.submitted;
    served = Atomic.get t.served;
    rejected = Atomic.get t.rejected;
    failed = Atomic.get t.failed;
    cache_hits = hits;
    cache_misses = misses;
    cache_len = Lru.length t.cache;
    in_flight = Atomic.get t.in_flight;
    networks;
  }

(* ---------- query execution (runs on a pool worker domain) ---------- *)

let execute net ~budget (q : Protocol.query) : Protocol.answer =
  Resil.Faultpoint.guard "serve.worker.raise" (Failure "injected serve worker fault");
  match q with
  | Protocol.Exists_flip { backend; spec; input; label } ->
      Protocol.Verdict (Fannet.Backend.exists_flip ~budget backend net spec ~input ~label)
  | Protocol.Tolerance { backend; bias_noise; max_delta; input; label } ->
      Protocol.Min_flip
        (Fannet.Tolerance.input_min_flip_delta_b ~budget backend net ~bias_noise
           ~max_delta ~input ~label)
  | Protocol.Sensitivity { spec; input; label } ->
      Protocol.Sidedness
        (Fannet.Sensitivity.formal_sidedness_b ~jobs:1 ~budget net spec
           ~inputs:[| (input, label) |])
  | Protocol.Certify { spec; input; label } ->
      let cv = Fannet.Backend.certified_exists_flip ~budget net spec ~input ~label in
      Protocol.Certified { verdict = cv.Fannet.Backend.cv_verdict; cert = cv.Fannet.Backend.cv_cert }
  | Protocol.Count { spec; input; label; mode } ->
      let mode =
        match mode with
        | Protocol.Count_exact { certify } ->
            Fannet.Robustness.Exact_mode { certify }
        | Protocol.Count_approx { epsilon; delta; seed } ->
            Fannet.Robustness.Approx_mode { epsilon; delta; seed }
      in
      let r = Fannet.Robustness.probability ~budget ~mode net spec ~input ~label in
      Protocol.Counted
        (match r.Fannet.Robustness.status with
        | Ok () ->
            Ok
              {
                Protocol.flips = r.Fannet.Robustness.flips;
                total = r.Fannet.Robustness.total;
                count_cert = r.Fannet.Robustness.certificate;
              }
        | Error reason -> Error reason)

let clamp_timeout t timeout_s =
  match (timeout_s, t.cfg.timeout_ceiling_s) with
  | None, ceiling -> ceiling
  | (Some _ as x), None -> x
  | Some x, Some c -> Some (Float.min x c)

let budget_of t (b : Protocol.budget_spec) =
  Resil.Budget.create
    ?timeout_s:(clamp_timeout t b.Protocol.timeout_s)
    ?conflicts:b.Protocol.conflicts
    ~token:(Resil.Budget.link t.stop_token) ()

let find_net t digest =
  Mutex.lock t.nets_lock;
  let r = Hashtbl.find_opt t.nets digest in
  Mutex.unlock t.nets_lock;
  r

(* Weigh cache entries by the bytes of the encoded answer sub-document —
   the thing a cache hit actually holds on to (certificates dominate). *)
let answer_weight answer =
  String.length (Util.Json.to_string (Protocol.answer_json answer))

(* A decided answer enters the LRU and, write-through, the journal. *)
let cache_answer t key answer =
  if Protocol.answer_decided answer then begin
    Lru.add ~weight:(answer_weight answer) t.cache key answer;
    match t.store with Some s -> Store.append s ~key answer | None -> ()
  end

let served_answer t key answer =
  cache_answer t key answer;
  Atomic.incr t.served;
  Obs.Metrics.incr m_served;
  Protocol.Answer { cached = false; answer }

let failed_reply t reply =
  Atomic.incr t.failed;
  Obs.Metrics.incr m_failed;
  reply

(* Run one admitted query on the compute backend and account for the
   outcome. *)
let compute_query t ~key ~digest ~query ~budget net : Protocol.reply =
  let since = Obs.Clock.now_ns () in
  match t.compute with
  | In_process pool -> (
      let budget = budget_of t budget in
      match Pool.run pool (fun () -> execute net ~budget query) with
      | answer ->
          Obs.Metrics.observe h_query (Obs.Clock.elapsed_s ~since);
          served_answer t key answer
      | exception Invalid_argument msg ->
          (* The engines reject unsupported shapes (single-output
             networks, non-identity output layers, ...) with
             Invalid_argument: that is the client's query, not a
             daemon fault, and must come back as a typed
             protocol error — never escape a worker domain raw. *)
          failed_reply t (Protocol.Protocol_error ("unsupported query: " ^ msg))
      | exception e -> failed_reply t (Protocol.Server_error (Printexc.to_string e)))
  | Supervised sup -> (
      (* clamp here — the worker process builds its budget from the spec
         verbatim, and cannot share the parent's cancellation token *)
      let budget =
        { budget with Protocol.timeout_s = clamp_timeout t budget.Protocol.timeout_s }
      in
      match Supervisor.query sup ~digest ~query ~budget with
      | Ok (Protocol.Answer { answer; _ }) ->
          Obs.Metrics.observe h_query (Obs.Clock.elapsed_s ~since);
          served_answer t key answer
      | Ok ((Protocol.Protocol_error _ | Protocol.Server_error _) as reply) ->
          failed_reply t reply
      | Ok _ -> failed_reply t (Protocol.Server_error "unexpected worker reply")
      | Error msg ->
          (* worker died mid-query / restarting / circuit open: a typed
             server error the client may retry — never a dead daemon *)
          failed_reply t (Protocol.Server_error msg))

let handle_query t ~digest ~query ~budget : Protocol.reply =
  Atomic.incr t.submitted;
  Obs.Metrics.incr m_submitted;
  match find_net t digest with
  | None -> failed_reply t (Protocol.Server_error ("unknown network digest " ^ digest))
  | Some net -> (
      let key = Protocol.query_key ~digest query in
      match Lru.find t.cache key with
      | Some answer ->
          Obs.Metrics.incr m_cache_hits;
          Atomic.incr t.served;
          Obs.Metrics.incr m_served;
          Protocol.Answer { cached = true; answer }
      | None ->
          Obs.Metrics.incr m_cache_misses;
          (* Admission: claim a slot before touching the compute backend
             so the reject path never queues work; a stopping daemon
             admits nothing (its journal may already be closed). *)
          let n = Atomic.fetch_and_add t.in_flight 1 in
          if n >= t.cfg.cap || Atomic.get t.stopping then begin
            Atomic.decr t.in_flight;
            Atomic.incr t.rejected;
            Obs.Metrics.incr m_rejected;
            Protocol.Overloaded { in_flight = n; cap = t.cfg.cap }
          end
          else
            Fun.protect
              ~finally:(fun () -> Atomic.decr t.in_flight)
              (fun () -> compute_query t ~key ~digest ~query ~budget net))

let handle_load t ~network : Protocol.reply =
  match Nn.Qnet.of_string network with
  | Error e -> Protocol.Server_error ("bad network: " ^ e)
  | Ok net ->
      (* Digest the canonical re-serialisation, not the upload bytes, so
         two textual variants of the same network share cache entries. *)
      let canonical = Nn.Qnet.to_string net in
      let digest = Digest.to_hex (Digest.string canonical) in
      Mutex.lock t.nets_lock;
      Hashtbl.replace t.nets digest net;
      Mutex.unlock t.nets_lock;
      (match t.compute with
      | Supervised sup -> Supervisor.load sup ~digest ~network:canonical
      | In_process _ -> ());
      Protocol.Loaded { digest }

(* ---------- connection handling ---------- *)

let send fd (env : Protocol.reply_envelope) =
  if Resil.Faultpoint.hit "serve.conn.reset" then begin
    (* chaos: the client connection drops just before the reply goes
       out — the daemon-side accounting already happened, the client
       sees a reset, the daemon must shrug *)
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
    raise (Unix.Unix_error (Unix.ECONNRESET, "send", "injected serve.conn.reset"))
  end;
  Wire.write_frame fd (Protocol.encode_reply env)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = try Unix.write fd b off (n - off) with Unix.Unix_error (EINTR, _, _) -> 0 in
      go (off + w)
  in
  go 0

(* Flush our side (FIN) and briefly drain whatever the peer still has in
   flight before the caller closes the fd: closing with unread bytes in
   the receive buffer would RST the connection and could destroy our
   last reply on the wire. *)
let flush_and_drain fd =
  try
    Unix.shutdown fd Unix.SHUTDOWN_SEND;
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0;
    let buf = Bytes.create 4096 in
    let rec drain () = if Unix.read fd buf 0 4096 > 0 then drain () in
    drain ()
  with _ -> ()

let http_scrape t fd =
  let body =
    let s = stats t in
    Printf.sprintf
      "serve.submitted %d\nserve.served %d\nserve.rejected %d\n\
       serve.failed %d\nserve.cache_hits %d\nserve.cache_misses %d\n\
       serve.cache_len %d\nserve.in_flight %d\nserve.networks %d\n\n%s"
      s.submitted s.served s.rejected s.failed s.cache_hits s.cache_misses
      s.cache_len s.in_flight s.networks
      (Obs.Metrics.text_report ())
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       (String.length body) body);
  flush_and_drain fd

(* Forward reference: [dispatch] on Shutdown must call [stop], defined
   below (it needs the whole lifecycle). *)
let stop_ref : (t -> unit) ref = ref (fun _ -> ())

(* [true] to keep reading frames on this connection. *)
let dispatch t fd rid (request : Protocol.request) =
  match request with
  | Protocol.Ping ->
      send fd { rid; reply = Protocol.Pong };
      true
  | Protocol.Load { network } ->
      send fd { rid; reply = handle_load t ~network };
      true
  | Protocol.Query { digest; query; budget } ->
      send fd { rid; reply = handle_query t ~digest ~query ~budget };
      true
  | Protocol.Metrics ->
      send fd
        { rid; reply = Protocol.Metrics_reply { stats = stats t; obs = Obs.Report.snapshot () } };
      true
  | Protocol.Shutdown ->
      send fd { rid; reply = Protocol.Bye };
      (* [stop] joins connection threads — including this one — so it
         must run elsewhere. *)
      let stop_fn = !stop_ref in
      ignore (Thread.create (fun () -> stop_fn t) ());
      false
  | Protocol.Set_faults _ ->
      (* supervisor-internal control traffic, not a client op *)
      send fd
        { rid; reply = Protocol.Protocol_error "set-faults is not a client request" };
      true

let rec serve_frames t fd ~first =
  let frame =
    match first with
    | Some f -> Wire.read_frame_after ~first:f fd
    | None -> Wire.read_frame fd
  in
  match frame with
  | Error Wire.Closed | Error Wire.Truncated -> ()
  | Error ((Wire.Bad_magic _ | Wire.Oversized _) as err) ->
      (* Framing is broken — there is no way to resync the stream, so
         answer typed and close. Closing with unread bytes in the
         receive buffer would RST the connection and could destroy the
         reply in flight, so flush our side (FIN) and briefly drain the
         peer's remaining garbage first. *)
      (try
         send fd { rid = 0; reply = Protocol.Protocol_error (Wire.error_to_string err) }
       with _ -> ());
      flush_and_drain fd
  | Ok payload -> (
      match Protocol.decode_request payload with
      | Error e ->
          (* The frame was intact, only its JSON was bad: reply typed
             and keep the connection. *)
          send fd { rid = 0; reply = Protocol.Protocol_error e };
          serve_frames t fd ~first:None
      | Ok { Protocol.rid; request } ->
          if dispatch t fd rid request then serve_frames t fd ~first:None)

type sniffed = Sniff_closed | Sniff_short | Sniff of string

let sniff fd =
  let buf = Bytes.create 4 in
  let rec go off =
    if off = 4 then Sniff (Bytes.to_string buf)
    else
      match Unix.read fd buf off (4 - off) with
      | 0 -> if off = 0 then Sniff_closed else Sniff_short
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let handle_conn t fd =
  match sniff fd with
  | Sniff_closed | Sniff_short -> ()
  | Sniff first when String.equal first "GET " -> http_scrape t fd
  | Sniff first -> serve_frames t fd ~first:(Some first)

let conn_thread t fd () =
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.conns_lock;
      Hashtbl.remove t.conns fd;
      Mutex.unlock t.conns_lock;
      try Unix.close fd with _ -> ())
    (fun () -> try handle_conn t fd with _ -> ())

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Mutex.lock t.conns_lock;
        if Atomic.get t.stopping then begin
          Mutex.unlock t.conns_lock;
          (try Unix.close fd with _ -> ())
        end
        else begin
          Hashtbl.replace t.conns fd ();
          let th = Thread.create (conn_thread t fd) () in
          t.threads <- th :: t.threads;
          Mutex.unlock t.conns_lock
        end;
        loop ()
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
    | exception _ ->
        (* [stop] shut the listening socket down; anything else on a
           dead listener is equally terminal. *)
        ()
  in
  loop ()

(* ---------- lifecycle ---------- *)

let bind_listen = function
  | Unix_path p ->
      (try if Sys.file_exists p then Sys.remove p with Sys_error _ -> ());
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      (try
         Unix.bind fd (ADDR_UNIX p);
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      (fd, Unix_path p, Some p)
  | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).h_addr_list.(0)
          with _ -> Unix.inet_addr_loopback)
      in
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd SO_REUSEADDR true;
         Unix.bind fd (ADDR_INET (inet, port));
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      let bound =
        match Unix.getsockname fd with
        | ADDR_INET (_, p) -> Tcp (host, p)
        | _ -> Tcp (host, port)
      in
      (fd, bound, None)

let run cfg =
  (* A client closing mid-reply must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let cfg = { cfg with workers = Stdlib.max 1 cfg.workers; cap = Stdlib.max 1 cfg.cap } in
  (* Supervised mode forks the compute fleet FIRST, while this process
     is still single-domain with no listening socket or journal to
     inherit — the in-process pool (which spawns domains, making later
     forks undefined) exists only in legacy mode. *)
  let compute =
    if cfg.procs > 0 then
      Supervised (Supervisor.create ~procs:cfg.procs ~workers:cfg.workers ~execute ())
    else In_process (Pool.create ~workers:cfg.workers)
  in
  let listen_fd, bound, unlink_path =
    try bind_listen cfg.addr
    with e ->
      (match compute with Supervised s -> Supervisor.stop s | In_process p -> Pool.shutdown p);
      raise e
  in
  let cache = Lru.create ~cap:cfg.cache_cap_bytes in
  let store =
    match cfg.store_path with
    | None -> None
    | Some path -> (
        match Store.open_ ~path with
        | Error _ -> None (* an unreadable journal must not block serving *)
        | Ok (s, recovered) ->
            (* warm the cache with recovered answers: every one of them
               was re-validated by Store (certificates through lib/cert),
               and re-encodes bit-identically because the cache stores
               the decoded value and the codec is deterministic *)
            List.iter
              (fun (key, answer) ->
                Lru.add ~weight:(answer_weight answer) cache key answer)
              recovered;
            let st = Store.stats s in
            Obs.Metrics.add m_store_recovered st.Store.recovered;
            Obs.Metrics.add m_store_dropped st.Store.dropped;
            Some s)
  in
  let t =
    {
      cfg;
      listen_fd;
      bound;
      unlink_path;
      compute;
      store;
      cache;
      nets = Hashtbl.create 8;
      nets_lock = Mutex.create ();
      stop_token = Resil.Budget.token ();
      stopping = Atomic.make false;
      stopped_flag = Atomic.make false;
      in_flight = Atomic.make 0;
      submitted = Atomic.make 0;
      served = Atomic.make 0;
      rejected = Atomic.make 0;
      failed = Atomic.make 0;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      threads = [];
      accept_thread = None;
      done_m = Mutex.create ();
      done_c = Condition.create ();
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let stop ?(grace_s = 30.) t =
  if Atomic.compare_and_set t.stopping false true then begin
    (* Wake the accept loop; [close] alone does not interrupt a thread
       blocked in accept(2). *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (* Drain in-flight queries within the grace period... *)
    let t0 = Obs.Clock.now_ns () in
    while Atomic.get t.in_flight > 0 && Obs.Clock.elapsed_s ~since:t0 < grace_s do
      Thread.delay 0.005
    done;
    (* ...then cancel stragglers through the linked budget tokens and
       give them a moment to unwind cooperatively. *)
    if Atomic.get t.in_flight > 0 then begin
      Resil.Budget.cancel t.stop_token;
      let t1 = Obs.Clock.now_ns () in
      while Atomic.get t.in_flight > 0 && Obs.Clock.elapsed_s ~since:t1 < 5.0 do
        Thread.delay 0.005
      done
    end;
    (* Close the journal BEFORE tearing down connections (whose Bye
       replies may still be flushing) or compute: Store.close serialises
       with any in-flight append or compaction under the store lock, so
       a SIGTERM-driven stop can never leave a mid-compaction tail —
       admission is already off, so nothing new will try to append. *)
    (match t.store with Some s -> Store.close s | None -> ());
    (match t.compute with
    | In_process pool -> Pool.shutdown pool
    | Supervised sup ->
        Obs.Metrics.add m_worker_deaths (Supervisor.deaths sup);
        Obs.Metrics.add m_worker_restarts (Supervisor.restarts sup);
        Supervisor.stop sup);
    (try Unix.close t.listen_fd with _ -> ());
    (* Wake connection threads blocked in a frame read; each closes its
       own fd on the way out. *)
    Mutex.lock t.conns_lock;
    let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [] in
    let ths = t.threads in
    Mutex.unlock t.conns_lock;
    List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ()) fds;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    List.iter Thread.join ths;
    (match t.unlink_path with
    | Some p -> ( try Sys.remove p with Sys_error _ -> ())
    | None -> ());
    Mutex.lock t.done_m;
    Atomic.set t.stopped_flag true;
    Condition.broadcast t.done_c;
    Mutex.unlock t.done_m
  end
  else begin
    (* Second caller: wait for the first to finish. *)
    Mutex.lock t.done_m;
    while not (Atomic.get t.stopped_flag) do
      Condition.wait t.done_c t.done_m
    done;
    Mutex.unlock t.done_m
  end

let () = stop_ref := fun t -> stop t

let wait t =
  Mutex.lock t.done_m;
  while not (Atomic.get t.stopped_flag) do
    Condition.wait t.done_c t.done_m
  done;
  Mutex.unlock t.done_m

let store_stats t = Option.map Store.stats t.store

let supervisor_stats t =
  match t.compute with
  | Supervised sup -> Some (Supervisor.restarts sup, Supervisor.deaths sup)
  | In_process _ -> None

let cache_weight t = Lru.total_weight t.cache
