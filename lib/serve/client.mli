(** Blocking client for one [fannetd] connection.

    Thin: {!rpc} stamps the next request id, writes one frame, reads one
    frame, checks the echoed id. Framing or connection failures surface
    as {!Error} — a client never raises on wire trouble (socket-level
    [Unix.Unix_error] from connect/write still propagates). *)

type conn

val connect : Daemon.addr -> conn
(** Raises [Unix.Unix_error] when nothing listens there. *)

val rpc : conn -> Protocol.request -> (Protocol.reply, string) result
(** One request/reply round trip. [Error] on a dead connection, a frame
    the server's peer could not parse, or a reply whose id does not echo
    the request ([rid = 0] protocol-error replies are accepted for any
    request — that is how the server reports unparseable input). *)

val send_raw : conn -> string -> unit
(** Write raw bytes, bypassing framing — for malformed-input tests. *)

val read_reply : conn -> (Protocol.reply_envelope, string) result
(** Read one reply frame without sending anything first. *)

val load : conn -> Nn.Qnet.t -> (string, string) result
(** Upload a network; returns its digest. *)

val query :
  ?budget:Protocol.budget_spec ->
  ?retries:int ->
  ?retry_base_s:float ->
  conn -> digest:string -> Protocol.query ->
  (Protocol.reply, string) result
(** One query, resent up to [retries] extra times (default 0) while the
    daemon answers with a transient reply — [Overloaded] admission
    pushback or a [Server_error] such as a supervised worker dying
    mid-query. Attempt [n] sleeps a jittered exponential backoff first:
    uniform in [0.5, 1.5) × [retry_base_s] (default 50 ms) × 2^(n-1),
    so a herd of rejected clients does not return in lockstep. The last
    transient reply is returned when the cap runs out; protocol errors
    and connection failures are never retried. *)

val ping : conn -> (unit, string) result
val shutdown : conn -> (unit, string) result
(** Ask the daemon to stop (waits for the [Bye] ack only — use
    {!Daemon.wait} on the server handle for full quiescence). *)

val close : conn -> unit
(** Idempotent. *)
