type conn = {
  fd : Unix.file_descr;
  mutable next_rid : int;
  mutable closed : bool;
}

let connect (addr : Daemon.addr) =
  let fd =
    match addr with
    | Daemon.Unix_path p ->
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        (try Unix.connect fd (ADDR_UNIX p)
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        fd
    | Daemon.Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with _ -> (
            try (Unix.gethostbyname host).h_addr_list.(0)
            with _ -> Unix.inet_addr_loopback)
        in
        let fd = Unix.socket PF_INET SOCK_STREAM 0 in
        (try Unix.connect fd (ADDR_INET (inet, port))
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        fd
  in
  { fd; next_rid = 1; closed = false }

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with _ -> ()
  end

let send_raw c s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let w = try Unix.write c.fd b off (n - off) with Unix.Unix_error (EINTR, _, _) -> 0 in
      go (off + w)
  in
  go 0

let read_reply c =
  match Wire.read_frame c.fd with
  | Error e -> Error (Wire.error_to_string e)
  | Ok payload -> Protocol.decode_reply payload

let rpc c request =
  let rid = c.next_rid in
  c.next_rid <- rid + 1;
  match Wire.write_frame c.fd (Protocol.encode_request { rid; request }) with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("write: " ^ Unix.error_message e)
  | () -> (
      match read_reply c with
      | Error _ as e -> e
      | Ok { Protocol.rid = r; reply } ->
          (* rid 0 is the server's "could not even parse your id". *)
          if r = rid || r = 0 then Ok reply
          else Error (Printf.sprintf "reply id %d for request %d" r rid))

let load c net =
  match rpc c (Protocol.Load { network = Nn.Qnet.to_string net }) with
  | Error _ as e -> e
  | Ok (Protocol.Loaded { digest }) -> Ok digest
  | Ok (Protocol.Server_error e) -> Error e
  | Ok _ -> Error "unexpected reply to Load"

(* Transient replies worth another attempt: admission-control pushback
   and server errors (the latter covers a supervised worker dying
   mid-query, which a restart fixes). Protocol errors are the client's
   own fault and never retried. *)
let transient = function
  | Protocol.Overloaded _ | Protocol.Server_error _ -> true
  | _ -> false

let query ?(budget = Protocol.no_budget) ?(retries = 0) ?(retry_base_s = 0.05)
    c ~digest q =
  let rng = lazy (Util.Rng.create (Unix.getpid () + (c.next_rid * 7919))) in
  let rec go attempt last =
    if attempt > retries then last
    else begin
      (if attempt > 0 then
         (* full jitter on an exponential ramp: sleep in
            [0.5, 1.5) x base x 2^(attempt-1), so a herd of rejected
            clients does not return in lockstep *)
         let base = retry_base_s *. (2.0 ** float_of_int (attempt - 1)) in
         Thread.delay (base *. (0.5 +. Util.Rng.float (Lazy.force rng))));
      match rpc c (Protocol.Query { digest; query = q; budget }) with
      | Ok reply as r when transient reply -> go (attempt + 1) r
      | r -> r
    end
  in
  go 0 (Error "unreachable: zero attempts")

let ping c =
  match rpc c Protocol.Ping with
  | Error _ as e -> e
  | Ok Protocol.Pong -> Ok ()
  | Ok _ -> Error "unexpected reply to Ping"

let shutdown c =
  match rpc c Protocol.Shutdown with
  | Error _ as e -> e
  | Ok Protocol.Bye -> Ok ()
  | Ok _ -> Error "unexpected reply to Shutdown"
