(* Bounded LRU: hash table into an intrusive doubly-linked list ordered
   by recency (head = most recent). One mutex per cache. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~cap =
  {
    capacity = cap;
    tbl = Hashtbl.create (Stdlib.max 16 cap);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* List surgery; all under the lock. *)

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  if t.capacity > 0 then
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some n ->
            n.value <- value;
            unlink t n;
            push_front t n
        | None ->
            (if Hashtbl.length t.tbl >= t.capacity then
               match t.tail with
               | Some lru ->
                   unlink t lru;
                   Hashtbl.remove t.tbl lru.key;
                   t.evictions <- t.evictions + 1
               | None -> ());
            let n = { key; value; prev = None; next = None } in
            push_front t n;
            Hashtbl.add t.tbl key n)

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let cap t = t.capacity

let stats t = locked t (fun () -> (t.hits, t.misses, t.evictions))
