(* Bounded LRU: hash table into an intrusive doubly-linked list ordered
   by recency (head = most recent). One mutex per cache.

   Capacity is a weight budget, not an entry count: each entry carries a
   weight (default 1, so a weightless caller gets entry-count semantics)
   and the tail is evicted until the total fits. The daemon weighs
   entries by encoded payload bytes — certificates dominate, and a
   handful of certified answers can outweigh thousands of verdicts. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable weight : int;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable total_weight : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

let create ~cap =
  {
    capacity = cap;
    tbl = Hashtbl.create (Stdlib.max 16 (Stdlib.min cap 4096));
    head = None;
    tail = None;
    total_weight = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* List surgery; all under the lock. *)

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.total_weight <- t.total_weight - n.weight

let evict_to_fit t =
  while t.total_weight > t.capacity do
    match t.tail with
    | Some lru ->
        drop t lru;
        t.evictions <- t.evictions + 1
    | None -> t.total_weight <- 0 (* unreachable: weights are positive *)
  done

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some n ->
          t.hits <- t.hits + 1;
          unlink t n;
          push_front t n;
          Some n.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let add ?(weight = 1) t key value =
  let weight = Stdlib.max 1 weight in
  if t.capacity > 0 then
    locked t (fun () ->
        if weight > t.capacity then
          (* the value can never fit; an older value under the same key
             is now stale and must not survive it *)
          match Hashtbl.find_opt t.tbl key with
          | Some n ->
              drop t n;
              t.evictions <- t.evictions + 1
          | None -> ()
        else begin
          (match Hashtbl.find_opt t.tbl key with
          | Some n ->
              n.value <- value;
              t.total_weight <- t.total_weight - n.weight + weight;
              n.weight <- weight;
              unlink t n;
              push_front t n
          | None ->
              let n = { key; value; weight; prev = None; next = None } in
              push_front t n;
              Hashtbl.add t.tbl key n;
              t.total_weight <- t.total_weight + weight);
          evict_to_fit t
        end)

let length t = locked t (fun () -> Hashtbl.length t.tbl)

let cap t = t.capacity

let total_weight t = locked t (fun () -> t.total_weight)

let stats t = locked t (fun () -> (t.hits, t.misses, t.evictions))
