(** [fannet-wire/1] message vocabulary and JSON codec.

    Every frame payload (see {!Wire}) is one JSON document: a request
    envelope client→server, a reply envelope server→client. The codec is
    total in both directions — [decode_*] maps any byte string onto
    either a typed message or an [Error] description, never an exception
    — and deterministic in the encode direction (field order is fixed),
    which is what makes {!query_key} a canonical cache key and lets the
    bench assert bit-identical cached certificates.

    The full field-level format is specified in DESIGN.md §fannet-wire/1;
    the QCheck battery in [test/test_serve.ml] pins down
    [decode ∘ encode = id] over randomly generated messages. *)

val version : string
(** ["fannet-wire/1"] — the [v] field of every envelope; a decoder
    rejects other values so incompatible peers fail typed, not
    mysteriously. *)

(** {1 Queries} *)

type query =
  | Exists_flip of {
      backend : Fannet.Backend.t;
      spec : Fannet.Noise.spec;
      input : int array;
      label : int;
    }  (** P2: does some vector in the range flip the input? *)
  | Tolerance of {
      backend : Fannet.Backend.t;
      bias_noise : bool;
      max_delta : int;
      input : int array;
      label : int;
    }  (** smallest flipping ±Δ in [0, max_delta], binary search *)
  | Sensitivity of {
      spec : Fannet.Noise.spec;
      input : int array;
      label : int;
    }  (** per-node formal sidedness *)
  | Certify of {
      spec : Fannet.Noise.spec;
      input : int array;
      label : int;
    }  (** certified exists-flip: DRUP/model certificate attached *)
  | Count of {
      spec : Fannet.Noise.spec;
      input : int array;
      label : int;
      mode : count_mode;
    }
      (** quantitative robustness: how many vectors in the range flip the
          input (exact #SAT, optionally [fannet-count-cert/1]-certified,
          or (ε, δ)-approximate) *)

and count_mode =
  | Count_exact of { certify : bool }
  | Count_approx of { epsilon : float; delta : float; seed : int }

type budget_spec = { timeout_s : float option; conflicts : int option }
(** Client-requested resource caps; the daemon clamps the timeout to its
    own ceiling and links the cancellation token to its shutdown token. *)

val no_budget : budget_spec

type request =
  | Load of { network : string }
      (** upload an {!Nn.Qnet.to_string} serialisation; the daemon
          registers it and replies [Loaded] with its digest *)
  | Query of { digest : string; query : query; budget : budget_spec }
  | Metrics  (** scrape: server stats + [fannet.obs/1] snapshot *)
  | Ping
  | Shutdown  (** graceful: drain in-flight queries, then stop *)
  | Set_faults of { spec : string }
      (** supervisor-internal: replace the worker's armed fault table
          with [spec] ({!Resil.Faultpoint.arm} syntax; [""] clears).
          Sent parent-to-worker at every (re)spawn so the chaos
          schedule tracks the parent's current table; the public daemon
          rejects it with a [Protocol_error] *)

type req_envelope = { rid : int; request : request }

(** {1 Replies} *)

type counted = {
  flips : Util.Bigcount.t;   (** flipping vectors (exact or estimate) *)
  total : Util.Bigcount.t;   (** noise-space cardinality *)
  count_cert : Count.Certificate.t option;
      (** present for certified exact counts; encoded deterministically,
          so cached answers are byte-identical including the
          certificate *)
}

type answer =
  | Verdict of Fannet.Backend.verdict
  | Min_flip of (int option, Resil.Budget.reason) result
  | Sidedness of (Fannet.Sensitivity.formal_side array, Resil.Budget.reason) result
  | Certified of {
      verdict : Fannet.Backend.verdict;
      cert : Cert.Verdict.t option;
    }
  | Counted of (counted, Resil.Budget.reason) result
      (** [Error] when the count's budget ran out (not cacheable) *)

type server_stats = {
  submitted : int;   (** query requests received (including rejected) *)
  served : int;      (** answered, cached or computed *)
  rejected : int;    (** turned away by admission control *)
  failed : int;      (** died with a server error *)
  cache_hits : int;
  cache_misses : int;
  cache_len : int;
  in_flight : int;
  networks : int;    (** resident networks *)
}
(** Always-on daemon counters. Invariant (asserted by the soak test):
    [served + rejected + failed = submitted] once the daemon is idle. *)

type reply =
  | Loaded of { digest : string }
  | Answer of { cached : bool; answer : answer }
  | Overloaded of { in_flight : int; cap : int }
      (** typed admission-control rejection — resend later *)
  | Metrics_reply of { stats : server_stats; obs : Util.Json.t }
  | Pong
  | Bye  (** acknowledges [Shutdown]; the daemon stops accepting *)
  | Protocol_error of string
      (** the frame or its JSON was malformed; the connection survives
          when the framing itself was intact *)
  | Server_error of string  (** the query raised; other queries unaffected *)

type reply_envelope = { rid : int; reply : reply }

(** {1 Codec} *)

val encode_request : req_envelope -> string
val decode_request : string -> (req_envelope, string) result
val encode_reply : reply_envelope -> string
val decode_reply : string -> (reply_envelope, string) result

val answer_json : answer -> Util.Json.t
(** The [answer] sub-document exactly as [encode_reply] embeds it — the
    bytes the bench compares for cache-hit bit-identity. *)

val answer_of_json : Util.Json.t -> (answer, string) result
(** Total inverse of {!answer_json}, for consumers (the verdict store)
    that must treat persisted payloads as untrusted bytes. *)

val query_key : digest:string -> query -> string
(** Canonical cache key: network digest × the deterministic JSON
    rendering of the query. Budgets are deliberately excluded — a
    decided verdict does not depend on the caps it was computed under. *)

val answer_decided : answer -> bool
(** Whether the answer may be cached: [Unknown]/[Error] outcomes are
    budget-dependent and must be recomputed, decided ones are semantic
    properties of (network, query). *)

(** {1 Structural equality} — for tests. *)

val query_equal : query -> query -> bool
val request_equal : req_envelope -> req_envelope -> bool
val answer_equal : answer -> answer -> bool
val reply_equal : reply_envelope -> reply_envelope -> bool
