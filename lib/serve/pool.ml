(* Resident worker domains fed from per-worker queues with stealing.
   One mutex guards every queue plus the lifecycle flags — at query
   granularity (milliseconds of solver work per job) lock contention is
   noise, and a single lock keeps the sleep/wake protocol obviously
   deadlock-free. *)

type t = {
  queues : (unit -> unit) Queue.t array;
  lock : Mutex.t;
  work : Condition.t;        (* signalled on submit and on shutdown *)
  mutable stopping : bool;
  mutable next : int;        (* round-robin submission cursor *)
  mutable joined : bool;
  n_steals : int Atomic.t;
  mutable domains : unit Domain.t array;
}

let queued_job t me =
  (* Own queue first, then steal from siblings (nearest first). *)
  let n = Array.length t.queues in
  if not (Queue.is_empty t.queues.(me)) then Some (Queue.pop t.queues.(me))
  else
    let rec scan k =
      if k = n then None
      else
        let i = (me + k) mod n in
        if Queue.is_empty t.queues.(i) then scan (k + 1)
        else begin
          Atomic.incr t.n_steals;
          Some (Queue.pop t.queues.(i))
        end
    in
    scan 1

let worker t me () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match queued_job t me with
      | Some job -> Some job
      | None ->
          if t.stopping then None
          else begin
            Condition.wait t.work t.lock;
            next ()
          end
    in
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some job ->
        (* Jobs own their exceptions ([run] transports them); a stray
           raise from a fire-and-forget [submit] job must not kill the
           worker, so it is swallowed here as a last resort. *)
        (try job () with _ -> ());
        loop ()
  in
  loop ()

let create ~workers =
  let workers = Stdlib.max 1 workers in
  let t =
    {
      queues = Array.init workers (fun _ -> Queue.create ());
      lock = Mutex.create ();
      work = Condition.create ();
      stopping = false;
      next = 0;
      joined = false;
      n_steals = Atomic.make 0;
      domains = [||];
    }
  in
  t.domains <- Array.init workers (fun i -> Domain.spawn (worker t i));
  t

let workers t = Array.length t.queues

let steals t = Atomic.get t.n_steals

let submit t job =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shutting down"
  end;
  Queue.push job t.queues.(t.next mod Array.length t.queues);
  t.next <- t.next + 1;
  Condition.signal t.work;
  Mutex.unlock t.lock

let run t f =
  let m = Mutex.create () in
  let c = Condition.create () in
  let cell = ref None in
  submit t (fun () ->
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock m;
      cell := Some r;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while Option.is_none !cell do
    Condition.wait c m
  done;
  let r = Option.get !cell in
  Mutex.unlock m;
  match r with Ok v -> v | Error e -> raise e

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work;
  let join_now = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  (* Workers drain their queues before exiting (the stop condition in
     [worker] only fires on empty queues), so joining here is the
     drain. *)
  if join_now then Array.iter Domain.join t.domains
