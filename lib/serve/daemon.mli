(** [fannetd] — the verification-as-a-service daemon.

    A socket server (Unix path or TCP) speaking {!Wire}-framed
    {!Protocol} messages. One lightweight thread per connection parses
    frames and answers control requests directly; query requests pass
    admission control, consult the LRU verdict cache, and on a miss run
    on the resident {!Pool} of worker domains — where warm
    {!Fannet.Warm} sessions keyed by the resident network accumulate, so
    repeat searches against the same model skip re-encoding.

    Admission control: at most [cap] queries may be queued-or-executing
    at once; excess requests are answered with a typed
    [Overloaded] reply rather than queued without bound. Every admitted
    query runs under a {!Resil.Budget} built from the request's caps,
    with its cancellation token linked to the daemon's shutdown token —
    [stop] cancels stragglers cooperatively after the drain grace.

    Cached answers are returned byte-identically: the cache stores the
    decoded {!Protocol.answer} value and every reply is re-encoded by
    the same deterministic codec, so a hit's [answer] sub-document
    equals the cold one's bit for bit (the E20 bench asserts this for
    certificates).

    The same socket also answers an HTTP-style scrape: a connection
    whose first bytes are ["GET "] receives the plain-text metrics
    report (daemon stats + {!Obs.Metrics.text_report}) and is closed —
    point [curl] at the TCP address and it works. The framed
    [Metrics] request returns the same stats plus the [fannet.obs/1]
    JSON snapshot.

    Always-on counters (mirrored into [serve.*] {!Obs.Metrics} when the
    registry is enabled) maintain the soak-test invariant
    [served + rejected + failed = submitted]. *)

type addr =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** host, port; port 0 picks a free one *)

type config = {
  addr : addr;
  workers : int;       (** worker domains (>= 1), per process when supervised *)
  cap : int;           (** admission cap on concurrent queries (>= 1) *)
  cache_cap_bytes : int;
      (** LRU verdict-cache budget in encoded-answer bytes (certificates
          dominate memory, not entry count); 0 disables caching *)
  timeout_ceiling_s : float option;
      (** clamp applied to client-requested budgets; [None] = no ceiling *)
  procs : int;
      (** supervised worker processes; 0 = legacy in-process pool.
          With [procs > 0] the compute fleet is forked ({!Supervisor}):
          this process keeps exactly one domain, queries are sharded by
          network digest, and a worker crash becomes a typed
          [server-error] reply plus a supervised restart — never a dead
          daemon *)
  store_path : string option;
      (** persistent verdict journal ([fannet-store/1], see {!Store});
          decided answers are written through, and on start the journal
          is recovered into the cache — bit-identical bytes, certificates
          re-validated by [lib/cert] — so a restart costs warm sessions
          but not certified verdicts. [None] = memory only *)
}

val default_config : config
(** Unix socket ["fannetd.sock"], workers = {!Util.Parallel.default_jobs},
    cap = [4 × workers], cache 16 MiB, no timeout ceiling, in-process
    compute, no journal. *)

type t

val run : config -> t
(** Bind, listen, spawn the worker pool and the accept thread, return
    immediately. Raises [Unix.Unix_error] when the address cannot be
    bound. An existing Unix-socket file at the path is replaced. *)

val address : t -> addr
(** The bound address — for [Tcp (host, 0)] this carries the actual
    port. *)

val stats : t -> Protocol.server_stats

val stop : ?grace_s:float -> t -> unit
(** Graceful shutdown: stop accepting (and stop admitting — late
    queries get a typed [Overloaded]), wait up to [grace_s] (default 30)
    for in-flight queries to drain, then fire the shutdown cancellation
    token (linked into every query budget) and wait again, close the
    verdict journal — before any connection teardown, so a [SIGTERM]
    mid-compaction can never leave a non-recoverable tail — then shut
    the compute backend down (pool drain, or supervised children
    reaped), close every connection, and join all threads. Idempotent.
    A Unix-socket file created by [run] is removed. *)

val store_stats : t -> Store.stats option
(** Journal counters ([None] without [store_path]). *)

val supervisor_stats : t -> (int * int) option
(** [(restarts, deaths)] of the supervised fleet ([None] when
    [procs = 0]). *)

val cache_weight : t -> int
(** Resident verdict-cache weight in encoded-answer bytes. *)

val wait : t -> unit
(** Block until the daemon has fully stopped (via {!stop} or a client's
    [Shutdown] request). *)

val stopped : t -> bool
