(** Thread-safe bounded LRU map, string keys.

    The daemon's verdict cache: [find] marks the entry most-recently
    used, [add] at capacity evicts the least-recently used entry. All
    operations take the cache's mutex, so the structure is safe from any
    thread or domain; operations are O(1) (hash table + intrusive
    doubly-linked recency list).

    Hit/miss/eviction counts are kept per cache (not process-wide) so
    tests and the metrics endpoint can report exact figures. *)

type 'a t

val create : cap:int -> 'a t
(** [cap <= 0] means "cache nothing": every [find] misses, every [add]
    is dropped — the configuration the cold-vs-warm bench uses to bypass
    caching without a second code path. *)

val find : 'a t -> string -> 'a option
(** [Some v] bumps the entry to most-recently-used and counts a hit;
    [None] counts a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite (either way the key becomes most-recently used).
    At capacity the least-recently-used key is evicted first. *)

val length : 'a t -> int

val cap : 'a t -> int

val stats : 'a t -> int * int * int
(** [(hits, misses, evictions)] since creation. *)
