(** Thread-safe bounded LRU map, string keys, weighted entries.

    The daemon's verdict cache: [find] marks the entry most-recently
    used, [add] evicts least-recently-used entries until the total
    weight fits the budget again. All operations take the cache's mutex,
    so the structure is safe from any thread or domain; operations are
    O(1) amortised (hash table + intrusive doubly-linked recency list).

    Weights default to 1, so a caller that never passes [?weight] gets
    plain entry-count semantics. The daemon weighs entries by encoded
    payload bytes — certificates dominate memory, not entry count.

    Hit/miss/eviction counts are kept per cache (not process-wide) so
    tests and the metrics endpoint can report exact figures. *)

type 'a t

val create : cap:int -> 'a t
(** [cap] is the total weight budget (bytes for the daemon, entries for
    weightless callers). [cap <= 0] means "cache nothing": every [find]
    misses, every [add] is dropped — the configuration the cold-vs-warm
    bench uses to bypass caching without a second code path. *)

val find : 'a t -> string -> 'a option
(** [Some v] bumps the entry to most-recently-used and counts a hit;
    [None] counts a miss. *)

val add : ?weight:int -> 'a t -> string -> 'a -> unit
(** Insert or overwrite (either way the key becomes most-recently used)
    at the given weight (default 1, clamped to >= 1), then evict from
    the least-recently-used end until the total weight fits. A value
    heavier than the whole budget is not inserted — and drops any older
    value cached under the same key, which would otherwise go stale. *)

val length : 'a t -> int
(** Resident entries (not weight). *)

val cap : 'a t -> int

val total_weight : 'a t -> int
(** Sum of resident entry weights; [<= cap] outside the lock. *)

val stats : 'a t -> int * int * int
(** [(hits, misses, evictions)] since creation. *)
