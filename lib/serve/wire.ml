(* fannet-wire/1 framing. See wire.mli for the format. *)

let magic = "FNW1"

let max_payload = 16 * 1024 * 1024

type error =
  | Bad_magic of string
  | Oversized of int
  | Truncated
  | Closed

let error_to_string = function
  | Bad_magic got -> Printf.sprintf "bad magic %S (want %S)" got magic
  | Oversized n ->
      Printf.sprintf "payload length %d exceeds the %d-byte cap" n max_payload
  | Truncated -> "stream truncated inside a frame"
  | Closed -> "stream closed"

let be32_put b off n =
  Bytes.set b off (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (n land 0xff))

let be32_get s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let header_len = 8 (* magic + length *)

let encode payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg
      (Printf.sprintf "Wire.encode: payload %d exceeds max_payload %d" n
         max_payload);
  let b = Bytes.create (header_len + n) in
  Bytes.blit_string magic 0 b 0 4;
  be32_put b 4 n;
  Bytes.blit_string payload 0 b header_len n;
  Bytes.to_string b

let decode buf =
  let len = String.length buf in
  if len = 0 then Error Closed
  else if len < 4 then
    if String.sub buf 0 len = String.sub magic 0 len then Error Truncated
    else Error (Bad_magic (String.sub buf 0 len))
  else if String.sub buf 0 4 <> magic then Error (Bad_magic (String.sub buf 0 4))
  else if len < header_len then Error Truncated
  else
    let n = be32_get buf 4 in
    if n < 0 || n > max_payload then Error (Oversized n)
    else if len < header_len + n then Error Truncated
    else Ok (String.sub buf header_len n, header_len + n)

(* ------------------------------------------------------------------ *)
(* Blocking fd codec                                                   *)
(* ------------------------------------------------------------------ *)

(* Read exactly [n] bytes; [`Eof k] reports how many arrived before the
   peer closed. *)
let really_read fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> `Eof off
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      (* A peer that aborted (RST) reads as an early end of stream — the
         typed [Truncated]/[Closed] outcomes, not an exception. *)
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          `Eof off
  in
  go 0

let read_rest fd claimed_magic =
  if claimed_magic <> magic then Error (Bad_magic claimed_magic)
  else
    match really_read fd 4 with
    | `Eof _ -> Error Truncated
    | `Ok lenbytes -> (
        let n = be32_get lenbytes 0 in
        if n < 0 || n > max_payload then Error (Oversized n)
        else
          match really_read fd n with
          | `Eof _ -> Error Truncated
          | `Ok payload -> Ok payload)

let read_frame fd =
  match really_read fd 4 with
  | `Eof 0 -> Error Closed
  | `Eof _ -> Error Truncated
  | `Ok m -> read_rest fd m

let read_frame_after ~first fd =
  let need = 4 - String.length first in
  if need < 0 then invalid_arg "Wire.read_frame_after: first longer than magic";
  if need = 0 then read_rest fd first
  else
    match really_read fd need with
    | `Eof 0 when first = "" -> Error Closed
    | `Eof _ -> Error Truncated
    | `Ok rest -> read_rest fd (first ^ rest)

let write_frame fd payload =
  let s = encode payload in
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
