(* fannet-wire/1 messages and their JSON codec. Encoding is
   deterministic (fixed field order); decoding is total — internal
   [Bad]-exception plumbing is caught at the two public entry points and
   surfaced as [Error]. *)

module J = Util.Json

let version = "fannet-wire/1"

type query =
  | Exists_flip of {
      backend : Fannet.Backend.t;
      spec : Fannet.Noise.spec;
      input : int array;
      label : int;
    }
  | Tolerance of {
      backend : Fannet.Backend.t;
      bias_noise : bool;
      max_delta : int;
      input : int array;
      label : int;
    }
  | Sensitivity of { spec : Fannet.Noise.spec; input : int array; label : int }
  | Certify of { spec : Fannet.Noise.spec; input : int array; label : int }
  | Count of {
      spec : Fannet.Noise.spec;
      input : int array;
      label : int;
      mode : count_mode;
    }

and count_mode =
  | Count_exact of { certify : bool }
  | Count_approx of { epsilon : float; delta : float; seed : int }

type budget_spec = { timeout_s : float option; conflicts : int option }

let no_budget = { timeout_s = None; conflicts = None }

type request =
  | Load of { network : string }
  | Query of { digest : string; query : query; budget : budget_spec }
  | Metrics
  | Ping
  | Shutdown
  | Set_faults of { spec : string }

type req_envelope = { rid : int; request : request }

type counted = {
  flips : Util.Bigcount.t;
  total : Util.Bigcount.t;
  count_cert : Count.Certificate.t option;
}

type answer =
  | Verdict of Fannet.Backend.verdict
  | Min_flip of (int option, Resil.Budget.reason) result
  | Sidedness of
      (Fannet.Sensitivity.formal_side array, Resil.Budget.reason) result
  | Certified of {
      verdict : Fannet.Backend.verdict;
      cert : Cert.Verdict.t option;
    }
  | Counted of (counted, Resil.Budget.reason) result

type server_stats = {
  submitted : int;
  served : int;
  rejected : int;
  failed : int;
  cache_hits : int;
  cache_misses : int;
  cache_len : int;
  in_flight : int;
  networks : int;
}

type reply =
  | Loaded of { digest : string }
  | Answer of { cached : bool; answer : answer }
  | Overloaded of { in_flight : int; cap : int }
  | Metrics_reply of { stats : server_stats; obs : Util.Json.t }
  | Pong
  | Bye
  | Protocol_error of string
  | Server_error of string

type reply_envelope = { rid : int; reply : reply }

(* ------------------------------------------------------------------ *)
(* Decode helpers                                                      *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let field name = function
  | J.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> bad "missing field %S" name)
  | _ -> bad "expected an object with field %S" name

let opt_field name = function
  | J.Obj kvs -> List.assoc_opt name kvs
  | _ -> bad "expected an object with field %S" name

let as_int = function
  | J.Int n -> n
  | _ -> bad "expected an integer"

let as_bool = function
  | J.Bool b -> b
  | _ -> bad "expected a boolean"

let as_string = function
  | J.String s -> s
  | _ -> bad "expected a string"

let as_float = function
  | J.Float f -> f
  | J.Int n -> float_of_int n
  | _ -> bad "expected a number"

let as_list = function
  | J.List l -> l
  | _ -> bad "expected an array"

let int_array j = Array.of_list (List.map as_int (as_list j))

let int_array_json a = J.List (Array.to_list (Array.map (fun n -> J.Int n) a))

let int_list_json l = J.List (List.map (fun n -> J.Int n) l)

let int_list j = List.map as_int (as_list j)

(* ------------------------------------------------------------------ *)
(* Leaf codecs: backend, spec, vector, reason, verdict, certificate    *)
(* ------------------------------------------------------------------ *)

let rec backend_json (b : Fannet.Backend.t) =
  match b with
  | Fannet.Backend.Bnb -> J.Obj [ ("b", J.String "bnb") ]
  | Fannet.Backend.Smt -> J.Obj [ ("b", J.String "smt") ]
  | Fannet.Backend.Explicit { limit } ->
      J.Obj [ ("b", J.String "explicit"); ("limit", J.Int limit) ]
  | Fannet.Backend.Interval -> J.Obj [ ("b", J.String "interval") ]
  | Fannet.Backend.Cascade inner ->
      J.Obj [ ("b", J.String "cascade"); ("inner", backend_json inner) ]

let rec backend_of_json j : Fannet.Backend.t =
  match as_string (field "b" j) with
  | "bnb" -> Fannet.Backend.Bnb
  | "smt" -> Fannet.Backend.Smt
  | "explicit" ->
      Fannet.Backend.Explicit { limit = as_int (field "limit" j) }
  | "interval" -> Fannet.Backend.Interval
  | "cascade" -> Fannet.Backend.Cascade (backend_of_json (field "inner" j))
  | s -> bad "unknown backend %S" s

let spec_json (s : Fannet.Noise.spec) =
  J.Obj
    [
      ("delta_lo", J.Int s.Fannet.Noise.delta_lo);
      ("delta_hi", J.Int s.Fannet.Noise.delta_hi);
      ("bias_noise", J.Bool s.Fannet.Noise.bias_noise);
      ( "kind",
        J.String
          (match s.Fannet.Noise.kind with
          | Fannet.Noise.Relative -> "relative"
          | Fannet.Noise.Absolute -> "absolute") );
    ]

let spec_of_json j : Fannet.Noise.spec =
  {
    Fannet.Noise.delta_lo = as_int (field "delta_lo" j);
    delta_hi = as_int (field "delta_hi" j);
    bias_noise = as_bool (field "bias_noise" j);
    kind =
      (match as_string (field "kind" j) with
      | "relative" -> Fannet.Noise.Relative
      | "absolute" -> Fannet.Noise.Absolute
      | s -> bad "unknown noise kind %S" s);
  }

let vector_json (v : Fannet.Noise.vector) =
  J.Obj
    [
      ("bias", J.Int v.Fannet.Noise.bias);
      ("inputs", int_array_json v.Fannet.Noise.inputs);
    ]

let vector_of_json j : Fannet.Noise.vector =
  {
    Fannet.Noise.bias = as_int (field "bias" j);
    inputs = int_array (field "inputs" j);
  }

let reason_json r = J.String (Resil.Budget.reason_to_string r)

let reason_of_json j : Resil.Budget.reason =
  match as_string j with
  | "deadline" -> Resil.Budget.Deadline
  | "conflicts" -> Resil.Budget.Conflicts
  | "memory" -> Resil.Budget.Memory
  | "cancelled" -> Resil.Budget.Cancelled
  | "incomplete" -> Resil.Budget.Incomplete
  | s -> bad "unknown budget reason %S" s

let verdict_json (v : Fannet.Backend.verdict) =
  match v with
  | Fannet.Backend.Robust -> J.Obj [ ("r", J.String "robust") ]
  | Fannet.Backend.Flip vec ->
      J.Obj [ ("r", J.String "flip"); ("vector", vector_json vec) ]
  | Fannet.Backend.Unknown reason ->
      J.Obj [ ("r", J.String "unknown"); ("reason", reason_json reason) ]

let verdict_of_json j : Fannet.Backend.verdict =
  match as_string (field "r" j) with
  | "robust" -> Fannet.Backend.Robust
  | "flip" -> Fannet.Backend.Flip (vector_of_json (field "vector" j))
  | "unknown" -> Fannet.Backend.Unknown (reason_of_json (field "reason" j))
  | s -> bad "unknown verdict %S" s

let clauses_json cnf = J.List (List.map int_list_json cnf)

let clauses_of_json j = List.map int_list (as_list j)

let cert_json (c : Cert.Verdict.t) =
  match c with
  | Cert.Verdict.Model { n_vars; cnf; assumptions; model } ->
      J.Obj
        [
          ("kind", J.String "model");
          ("n_vars", J.Int n_vars);
          ("cnf", clauses_json cnf);
          ("assumptions", int_list_json assumptions);
          ( "model",
            J.List
              (Array.to_list
                 (Array.map (fun b -> J.Int (if b then 1 else 0)) model)) );
        ]
  | Cert.Verdict.Refutation { n_vars; cnf; assumptions; proof } ->
      let step_json (s : Cert.Rup.step) =
        match s with
        | Cert.Rup.Learn c -> J.List [ J.String "l"; int_list_json c ]
        | Cert.Rup.Delete c -> J.List [ J.String "d"; int_list_json c ]
      in
      J.Obj
        [
          ("kind", J.String "refutation");
          ("n_vars", J.Int n_vars);
          ("cnf", clauses_json cnf);
          ("assumptions", int_list_json assumptions);
          ("proof", J.List (List.map step_json proof));
        ]

let cert_of_json j : Cert.Verdict.t =
  let n_vars = as_int (field "n_vars" j) in
  let cnf = clauses_of_json (field "cnf" j) in
  let assumptions = int_list (field "assumptions" j) in
  match as_string (field "kind" j) with
  | "model" ->
      let model =
        Array.of_list
          (List.map
             (fun v ->
               match as_int v with
               | 0 -> false
               | 1 -> true
               | n -> bad "model bit %d" n)
             (as_list (field "model" j)))
      in
      Cert.Verdict.Model { n_vars; cnf; assumptions; model }
  | "refutation" ->
      let step_of_json s : Cert.Rup.step =
        match as_list s with
        | [ J.String "l"; c ] -> Cert.Rup.Learn (int_list c)
        | [ J.String "d"; c ] -> Cert.Rup.Delete (int_list c)
        | _ -> bad "malformed proof step"
      in
      let proof = List.map step_of_json (as_list (field "proof" j)) in
      Cert.Verdict.Refutation { n_vars; cnf; assumptions; proof }
  | s -> bad "unknown certificate kind %S" s

(* ------------------------------------------------------------------ *)
(* Query codec                                                         *)
(* ------------------------------------------------------------------ *)

let query_json = function
  | Exists_flip { backend; spec; input; label } ->
      J.Obj
        [
          ("kind", J.String "exists-flip");
          ("backend", backend_json backend);
          ("spec", spec_json spec);
          ("input", int_array_json input);
          ("label", J.Int label);
        ]
  | Tolerance { backend; bias_noise; max_delta; input; label } ->
      J.Obj
        [
          ("kind", J.String "tolerance");
          ("backend", backend_json backend);
          ("bias_noise", J.Bool bias_noise);
          ("max_delta", J.Int max_delta);
          ("input", int_array_json input);
          ("label", J.Int label);
        ]
  | Sensitivity { spec; input; label } ->
      J.Obj
        [
          ("kind", J.String "sensitivity");
          ("spec", spec_json spec);
          ("input", int_array_json input);
          ("label", J.Int label);
        ]
  | Certify { spec; input; label } ->
      J.Obj
        [
          ("kind", J.String "certify");
          ("spec", spec_json spec);
          ("input", int_array_json input);
          ("label", J.Int label);
        ]
  | Count { spec; input; label; mode } ->
      let mode_json =
        match mode with
        | Count_exact { certify } ->
            J.Obj [ ("m", J.String "exact"); ("certify", J.Bool certify) ]
        | Count_approx { epsilon; delta; seed } ->
            J.Obj
              [
                ("m", J.String "approx");
                ("epsilon", J.Float epsilon);
                ("delta", J.Float delta);
                ("seed", J.Int seed);
              ]
      in
      J.Obj
        [
          ("kind", J.String "count");
          ("spec", spec_json spec);
          ("input", int_array_json input);
          ("label", J.Int label);
          ("mode", mode_json);
        ]

let count_mode_of_json j =
  match as_string (field "m" j) with
  | "exact" -> Count_exact { certify = as_bool (field "certify" j) }
  | "approx" ->
      Count_approx
        {
          epsilon = as_float (field "epsilon" j);
          delta = as_float (field "delta" j);
          seed = as_int (field "seed" j);
        }
  | s -> bad "unknown count mode %S" s

let query_of_json j =
  let input () = int_array (field "input" j) in
  let label () = as_int (field "label" j) in
  match as_string (field "kind" j) with
  | "exists-flip" ->
      Exists_flip
        {
          backend = backend_of_json (field "backend" j);
          spec = spec_of_json (field "spec" j);
          input = input ();
          label = label ();
        }
  | "tolerance" ->
      Tolerance
        {
          backend = backend_of_json (field "backend" j);
          bias_noise = as_bool (field "bias_noise" j);
          max_delta = as_int (field "max_delta" j);
          input = input ();
          label = label ();
        }
  | "sensitivity" ->
      Sensitivity
        {
          spec = spec_of_json (field "spec" j);
          input = input ();
          label = label ();
        }
  | "certify" ->
      Certify
        {
          spec = spec_of_json (field "spec" j);
          input = input ();
          label = label ();
        }
  | "count" ->
      Count
        {
          spec = spec_of_json (field "spec" j);
          input = input ();
          label = label ();
          mode = count_mode_of_json (field "mode" j);
        }
  | s -> bad "unknown query kind %S" s

let query_key ~digest q = digest ^ "\n" ^ J.to_string (query_json q)

(* ------------------------------------------------------------------ *)
(* Request codec                                                       *)
(* ------------------------------------------------------------------ *)

let request_json = function
  | Load { network } ->
      J.Obj [ ("op", J.String "load"); ("network", J.String network) ]
  | Query { digest; query; budget } ->
      let base =
        [
          ("op", J.String "query");
          ("digest", J.String digest);
          ("query", query_json query);
        ]
      in
      let base =
        match budget.timeout_s with
        | None -> base
        | Some t -> base @ [ ("timeout_s", J.Float t) ]
      in
      let base =
        match budget.conflicts with
        | None -> base
        | Some c -> base @ [ ("conflicts", J.Int c) ]
      in
      J.Obj base
  | Metrics -> J.Obj [ ("op", J.String "metrics") ]
  | Ping -> J.Obj [ ("op", J.String "ping") ]
  | Shutdown -> J.Obj [ ("op", J.String "shutdown") ]
  | Set_faults { spec } ->
      J.Obj [ ("op", J.String "set-faults"); ("spec", J.String spec) ]

let request_of_json j =
  match as_string (field "op" j) with
  | "load" -> Load { network = as_string (field "network" j) }
  | "query" ->
      Query
        {
          digest = as_string (field "digest" j);
          query = query_of_json (field "query" j);
          budget =
            {
              timeout_s = Option.map as_float (opt_field "timeout_s" j);
              conflicts = Option.map as_int (opt_field "conflicts" j);
            };
        }
  | "metrics" -> Metrics
  | "ping" -> Ping
  | "shutdown" -> Shutdown
  | "set-faults" -> Set_faults { spec = as_string (field "spec" j) }
  | s -> bad "unknown request op %S" s

let envelope_json ~tag ~rid body =
  J.Obj [ ("v", J.String version); ("id", J.Int rid); (tag, body) ]

let check_envelope ~tag j =
  (match as_string (field "v" j) with
  | v when v = version -> ()
  | v -> bad "protocol version %S (want %S)" v version);
  (as_int (field "id" j), field tag j)

let encode_request { rid; request } =
  J.to_string (envelope_json ~tag:"req" ~rid (request_json request))

let total name f s =
  match J.of_string s with
  | Error e -> Error (name ^ ": " ^ e)
  | Ok j -> ( try Ok (f j) with Bad msg -> Error (name ^ ": " ^ msg))

let decode_request s =
  total "request" (fun j ->
      let rid, body = check_envelope ~tag:"req" j in
      { rid; request = request_of_json body })
    s

(* ------------------------------------------------------------------ *)
(* Reply codec                                                         *)
(* ------------------------------------------------------------------ *)

let answer_json = function
  | Verdict v -> J.Obj [ ("a", J.String "verdict"); ("verdict", verdict_json v) ]
  | Min_flip (Ok m) ->
      J.Obj
        [
          ("a", J.String "min-flip");
          ("ok", match m with None -> J.Null | Some d -> J.Int d);
        ]
  | Min_flip (Error r) ->
      J.Obj [ ("a", J.String "min-flip"); ("error", reason_json r) ]
  | Sidedness (Ok sides) ->
      let side_json (s : Fannet.Sensitivity.formal_side) =
        J.Obj
          [
            ("node", J.Int s.Fannet.Sensitivity.fs_node);
            ("pos", J.Bool s.Fannet.Sensitivity.positive_flip);
            ("neg", J.Bool s.Fannet.Sensitivity.negative_flip);
          ]
      in
      J.Obj
        [
          ("a", J.String "sidedness");
          ("ok", J.List (Array.to_list (Array.map side_json sides)));
        ]
  | Sidedness (Error r) ->
      J.Obj [ ("a", J.String "sidedness"); ("error", reason_json r) ]
  | Certified { verdict; cert } ->
      J.Obj
        [
          ("a", J.String "certified");
          ("verdict", verdict_json verdict);
          ("cert", match cert with None -> J.Null | Some c -> cert_json c);
        ]
  | Counted (Ok { flips; total; count_cert }) ->
      J.Obj
        [
          ("a", J.String "count");
          ("flips", Util.Bigcount.to_json flips);
          ("total", Util.Bigcount.to_json total);
          ( "cert",
            match count_cert with
            | None -> J.Null
            | Some c -> Count.Certificate.to_json c );
        ]
  | Counted (Error r) ->
      J.Obj [ ("a", J.String "count"); ("error", reason_json r) ]

let answer_of_json j =
  match as_string (field "a" j) with
  | "verdict" -> Verdict (verdict_of_json (field "verdict" j))
  | "min-flip" -> (
      match opt_field "error" j with
      | Some r -> Min_flip (Error (reason_of_json r))
      | None ->
          Min_flip
            (Ok
               (match field "ok" j with
               | J.Null -> None
               | v -> Some (as_int v))))
  | "sidedness" -> (
      match opt_field "error" j with
      | Some r -> Sidedness (Error (reason_of_json r))
      | None ->
          let side_of_json s : Fannet.Sensitivity.formal_side =
            {
              Fannet.Sensitivity.fs_node = as_int (field "node" s);
              positive_flip = as_bool (field "pos" s);
              negative_flip = as_bool (field "neg" s);
            }
          in
          Sidedness
            (Ok (Array.of_list (List.map side_of_json (as_list (field "ok" j))))))
  | "certified" ->
      Certified
        {
          verdict = verdict_of_json (field "verdict" j);
          cert =
            (match field "cert" j with
            | J.Null -> None
            | c -> Some (cert_of_json c));
        }
  | "count" -> (
      match opt_field "error" j with
      | Some r -> Counted (Error (reason_of_json r))
      | None ->
          let bigcount name =
            match Util.Bigcount.of_json (field name j) with
            | Ok b -> b
            | Error e -> bad "%s: %s" name e
          in
          Counted
            (Ok
               {
                 flips = bigcount "flips";
                 total = bigcount "total";
                 count_cert =
                   (match field "cert" j with
                   | J.Null -> None
                   | c -> (
                       match Count.Certificate.of_json c with
                       | Ok cert -> Some cert
                       | Error e -> bad "count certificate: %s" e));
               }))
  | s -> bad "unknown answer form %S" s

let stats_json (s : server_stats) =
  J.Obj
    [
      ("submitted", J.Int s.submitted);
      ("served", J.Int s.served);
      ("rejected", J.Int s.rejected);
      ("failed", J.Int s.failed);
      ("cache_hits", J.Int s.cache_hits);
      ("cache_misses", J.Int s.cache_misses);
      ("cache_len", J.Int s.cache_len);
      ("in_flight", J.Int s.in_flight);
      ("networks", J.Int s.networks);
    ]

let stats_of_json j =
  {
    submitted = as_int (field "submitted" j);
    served = as_int (field "served" j);
    rejected = as_int (field "rejected" j);
    failed = as_int (field "failed" j);
    cache_hits = as_int (field "cache_hits" j);
    cache_misses = as_int (field "cache_misses" j);
    cache_len = as_int (field "cache_len" j);
    in_flight = as_int (field "in_flight" j);
    networks = as_int (field "networks" j);
  }

let reply_json = function
  | Loaded { digest } ->
      J.Obj [ ("op", J.String "loaded"); ("digest", J.String digest) ]
  | Answer { cached; answer } ->
      J.Obj
        [
          ("op", J.String "answer");
          ("cached", J.Bool cached);
          ("answer", answer_json answer);
        ]
  | Overloaded { in_flight; cap } ->
      J.Obj
        [
          ("op", J.String "overloaded");
          ("in_flight", J.Int in_flight);
          ("cap", J.Int cap);
        ]
  | Metrics_reply { stats; obs } ->
      J.Obj [ ("op", J.String "metrics"); ("stats", stats_json stats); ("obs", obs) ]
  | Pong -> J.Obj [ ("op", J.String "pong") ]
  | Bye -> J.Obj [ ("op", J.String "bye") ]
  | Protocol_error e ->
      J.Obj [ ("op", J.String "protocol-error"); ("error", J.String e) ]
  | Server_error e ->
      J.Obj [ ("op", J.String "server-error"); ("error", J.String e) ]

let reply_of_json j =
  match as_string (field "op" j) with
  | "loaded" -> Loaded { digest = as_string (field "digest" j) }
  | "answer" ->
      Answer
        {
          cached = as_bool (field "cached" j);
          answer = answer_of_json (field "answer" j);
        }
  | "overloaded" ->
      Overloaded
        {
          in_flight = as_int (field "in_flight" j);
          cap = as_int (field "cap" j);
        }
  | "metrics" ->
      Metrics_reply
        { stats = stats_of_json (field "stats" j); obs = field "obs" j }
  | "pong" -> Pong
  | "bye" -> Bye
  | "protocol-error" -> Protocol_error (as_string (field "error" j))
  | "server-error" -> Server_error (as_string (field "error" j))
  | s -> bad "unknown reply op %S" s

let encode_reply { rid; reply } =
  J.to_string (envelope_json ~tag:"rep" ~rid (reply_json reply))

let decode_reply s =
  total "reply" (fun j ->
      let rid, body = check_envelope ~tag:"rep" j in
      { rid; reply = reply_of_json body })
    s

(* Total variant of the raising decoder above, exported for the verdict
   store which must treat journal payloads as untrusted bytes. Shadows
   the internal one after its last internal use. *)
let answer_of_json j =
  try Ok (answer_of_json j) with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Cacheability and equality                                           *)
(* ------------------------------------------------------------------ *)

let answer_decided = function
  | Verdict (Fannet.Backend.Robust | Fannet.Backend.Flip _) -> true
  | Verdict (Fannet.Backend.Unknown _) -> false
  | Min_flip (Ok _) | Sidedness (Ok _) -> true
  | Min_flip (Error _) | Sidedness (Error _) -> false
  | Counted (Ok _) -> true
  | Counted (Error _) -> false
  | Certified { verdict = Fannet.Backend.Robust | Fannet.Backend.Flip _; cert = Some _ }
    ->
      true
  | Certified _ -> false

(* Structural equality via the deterministic encoding: two messages are
   equal iff their canonical JSON is — exactly the notion the cache and
   the bit-identity bench use, and free of polymorphic-compare traps on
   functional or abstract payloads (there are none here, but the
   encoding is already the canonical form). *)
let query_equal a b = J.to_string (query_json a) = J.to_string (query_json b)

let request_equal a b = encode_request a = encode_request b

let answer_equal a b = J.to_string (answer_json a) = J.to_string (answer_json b)

let reply_equal a b = encode_reply a = encode_reply b
