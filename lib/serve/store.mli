(** Persistent verdict store: an append-only journal, format
    [fannet-store/1].

    The daemon's answer cache (see {!Lru}) is write-through to this
    journal, so a restart recovers every decided answer — certificate
    bytes included, bit-identical — instead of recomputing them. The
    file layout is

    {v
    fannet-store/1\n
    <len> <fnv1a64-hex>\n<payload>\n      (repeated)
    v}

    where [payload] is the compact JSON document
    [{"key": <cache key>, "answer": <Protocol.answer_json>}] of exactly
    [len] bytes and the checksum covers the payload (the same FNV-1a-64
    as {!Resil.Ckpt}). Appends are fsync-free but framed, so the only
    damage a crash can cause is a torn tail:

    - a record whose header, length or checksum does not match is
      treated as the torn tail — the file is truncated back to the last
      good record on open (counted in [stats.truncated_bytes]);
    - a record that frames correctly but whose JSON does not decode, or
      whose [Certified] answer fails {!Cert.Verdict.check}
      re-validation, is dropped individually (counted in
      [stats.dropped]) and scanning continues — framing integrity and
      semantic validity are independent defences.

    The journal self-compacts: when the file grows beyond
    [max 64 KiB (2 * live_bytes)] a compaction rewrites only the
    last-wins records through a temp file + atomic rename (the
    {!Resil.Ckpt} discipline), so the journal never grows without bound
    and a crash mid-compaction leaves the old file intact.

    Faultpoint ["serve.store.torn"] makes the next {!append} write half
    its record and silently disable the store — simulating a daemon
    crash mid-write; recovery must shed exactly that record. *)

type t

type stats = {
  appends : int;       (** records written by this handle *)
  compactions : int;   (** journal rewrites by this handle *)
  recovered : int;     (** live records recovered at open *)
  dropped : int;       (** framed-but-invalid records dropped at open *)
  truncated_bytes : int;  (** torn-tail bytes cut at open *)
  live_bytes : int;    (** payload bytes of live (last-wins) records *)
  file_bytes : int;    (** current journal size on disk *)
}

val open_ : path:string ->
  (t * (string * Protocol.answer) list, string) result
(** Open (creating if absent) the journal at [path] and recover its
    live records, last-wins per key, in append order. Torn tails are
    truncated in place; invalid records are dropped. [Error] only for
    I/O failures or a foreign format header — recoverable damage never
    fails the open. *)

val append : t -> key:string -> Protocol.answer -> unit
(** Journal one decided answer under [key]. Re-appending a key
    supersedes the earlier record (last-wins on recovery). Serialised
    internally; safe from concurrent connection threads. A write
    failure (disk full, armed fault) disables the store — the daemon
    keeps serving from memory. *)

val close : t -> unit
(** Flush and close the journal. Idempotent, and serialised against
    in-flight appends and compaction, so closing mid-compaction can
    never leave a non-recoverable tail. *)

val stats : t -> stats
val path : t -> string
