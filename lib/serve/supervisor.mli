(** Process supervision: the daemon's compute pool, forked into worker
    {e processes} so a crash is an event, not an outage.

    {!create} forks [procs] children; each child runs its own {!Pool} of
    worker domains (with its own warm {!Fannet.Warm} sessions) and
    speaks [fannet-wire/1] to the parent over a socketpair. Queries are
    sharded by network digest — [fnv1a64(digest) mod procs] — so repeat
    queries against the same model always land on the same child and its
    warm sessions stay hot.

    Death is detected by EOF on the socketpair (the child's end closes
    the instant the process dies, whatever killed it); the reader thread
    reaps the corpse, fails the queries that were in flight on that
    child with a typed error (the daemon turns it into a [server-error]
    reply — the client can retry), and schedules a restart with
    exponential backoff. More than [storm_limit] deaths inside
    [storm_window_s] opens a circuit breaker: queries to that shard fail
    fast for [cooloff_s] instead of burning CPU on fork-crash loops.
    A restarted child is replayed every [Load] its shard owns before it
    serves again, so restarts are invisible to clients beyond latency.

    Fork safety: workers are never forked from the daemon itself.
    Forking a process that has grown many live threads clones runtime
    bookkeeping for threads that do not exist in the child, and a child
    that then spawns domains can wedge inside a stop-the-world section
    that never completes. Instead {!create} forks one single-threaded
    {e spawner} process up front — before the daemon owns any threads,
    sockets or the store — and every worker generation, initial or
    respawned, is forked by the spawner and connects back to the parent
    over a private unix socket. The parent daemon must still never
    spawn worker {e domains} of its own in supervised mode. Children
    exit with [Unix._exit] only, so parent [at_exit] hooks never run
    twice.

    Faultpoint ["serve.worker.kill"] makes a worker [_exit 137] on
    query receipt, as if OOM-killed. The parent replays its armed
    table ({!Resil.Faultpoint.snapshot}) into every worker at spawn
    time, so arming or clearing between restarts steers every later
    generation; a live worker keeps the table it was last sent. *)

type policy = {
  backoff_base_s : float;  (** first restart delay; doubles per recent death *)
  backoff_max_s : float;   (** backoff ceiling *)
  storm_limit : int;       (** deaths within the window that open the circuit *)
  storm_window_s : float;
  cooloff_s : float;       (** how long the circuit stays open *)
}

val default_policy : policy
(** 50 ms base, 2 s cap, 5 deaths / 10 s window, 1 s cooloff. *)

type t

val create :
  ?policy:policy ->
  procs:int ->
  workers:int ->
  execute:(Nn.Qnet.t -> budget:Resil.Budget.t -> Protocol.query -> Protocol.answer) ->
  unit ->
  t
(** Fork [procs] (>= 1, clamped) children, each with a [workers]-domain
    pool, all running [execute] for query compute. Call this before the
    parent owns any worker domains. *)

val load : t -> digest:string -> network:string -> unit
(** Register a network for replay and forward it to the owning shard.
    Ordering is guaranteed by the socketpair stream: a query sent after
    [load] returns cannot reach the child before the network did. *)

val query :
  t ->
  digest:string ->
  query:Protocol.query ->
  budget:Protocol.budget_spec ->
  (Protocol.reply, string) result
(** Run one query on the owning shard and wait for its reply —
    [Answer], [Protocol_error] or [Server_error], exactly as the child
    produced it. [Error msg] is a supervisor-level failure: the child
    died mid-query, is between restarts, or its circuit is open; the
    caller answers a typed [server-error] and the client may retry.
    The [budget] is forwarded verbatim — clamp it first. *)

val procs : t -> int

val restarts : t -> int
(** Children respawned after a death (the initial generation is not a
    restart). *)

val deaths : t -> int
(** Child deaths observed (EOF on the socketpair). *)

val stop : t -> unit
(** Shut every child down (wire [Shutdown], then EOF, then [SIGKILL]
    after a grace), reap them all and join the reader threads.
    Idempotent. *)
