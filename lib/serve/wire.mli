(** [fannet-wire/1] framing: length-prefixed payloads over a byte stream.

    A frame is [magic (4 bytes, "FNW1") | length (4 bytes, big-endian,
    payload bytes) | payload]. The payload is an opaque byte string —
    {!Protocol} puts JSON in it, this module never looks inside. Frames
    above {!max_payload} are rejected before any allocation proportional
    to the claimed length, so a hostile length prefix cannot OOM the
    daemon.

    Decoding is total: every malformed input maps onto a typed
    {!error}, never an exception, which is what lets the daemon's accept
    loop answer garbage with a typed protocol-error reply instead of
    dying (the property the wire QCheck battery pins down). *)

val magic : string
(** ["FNW1"] — 4 bytes, first on the wire. Deliberately distinct from
    ["GET "] so an HTTP-style scrape ([GET /metrics]) on the same socket
    is recognisable from the first 4 bytes. *)

val max_payload : int
(** 16 MiB. Frames claiming more are {!Oversized}. *)

type error =
  | Bad_magic of string  (** the 4 bytes that were read instead *)
  | Oversized of int     (** claimed payload length above {!max_payload} *)
  | Truncated            (** stream ended inside the header or payload *)
  | Closed               (** stream ended cleanly before any frame byte *)

val error_to_string : error -> string

(** {1 String-level codec} — pure, for property tests. *)

val encode : string -> string
(** Wrap a payload into one frame. Raises [Invalid_argument] when the
    payload exceeds {!max_payload} (the daemon never builds such
    replies; the check keeps the encoder total on its domain). *)

val decode : string -> (string * int, error) result
(** Parse one frame from the head of the buffer; [Ok (payload, used)]
    with [used] bytes consumed. A buffer that starts with a valid but
    incomplete frame is [Truncated]; an empty buffer is [Closed]. *)

(** {1 File-descriptor codec} — blocking reads/writes. *)

val read_frame : Unix.file_descr -> (string, error) result
(** Read exactly one frame. [Closed] when the peer disconnected at a
    frame boundary, [Truncated] when it disconnected inside one. *)

val read_frame_after : first:string -> Unix.file_descr -> (string, error) result
(** Like {!read_frame} when the caller already consumed [first] bytes of
    the header while sniffing the connection type (the daemon reads 4
    bytes to distinguish frames from [GET ] scrapes). *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (handles short writes). Raises
    [Unix.Unix_error] on a broken pipe — callers own the socket. *)
