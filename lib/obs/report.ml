let schema = "fannet.obs/1"

(* Parallel-pool metrics, fed by the probe installed in [enable]. *)
let h_worker = Metrics.histogram "parallel.worker_busy_s"

let g_imbalance = Metrics.gauge "parallel.imbalance"

let c_batches = Metrics.counter "parallel.batches"

let c_steals = Metrics.counter "parallel.steals"

let c_items = Metrics.counter "parallel.items"

let parallel_probe =
  {
    Util.Parallel.now_s = Clock.now_s;
    record =
      (fun ~stats ->
        Metrics.incr c_batches;
        let n = Array.length stats in
        if n > 0 then begin
          let busy = ref 0. and slowest = ref 0. in
          Array.iter
            (fun (w : Util.Parallel.worker_stat) ->
              Metrics.observe h_worker w.busy_s;
              Metrics.add c_steals w.steals;
              Metrics.add c_items w.items;
              busy := !busy +. w.busy_s;
              if w.busy_s > !slowest then slowest := w.busy_s)
            stats;
          (* Slowest worker's busy time over the mean, measured on what
             each worker actually ran after stealing — 1.0 is a perfectly
             balanced batch; the batch's wall time is bounded by the
             slowest worker, and stealing is what pushes this towards 1. *)
          let mean = !busy /. float_of_int n in
          if mean > 0. then Metrics.set_gauge g_imbalance (!slowest /. mean)
        end);
  }

let enable () =
  Metrics.set_enabled true;
  Util.Parallel.set_probe (Some parallel_probe)

let disable () =
  Util.Parallel.set_probe None;
  Metrics.set_enabled false

let snapshot () =
  Util.Json.Obj
    [
      ("schema", Util.Json.String schema);
      ("monotonic_clock", Util.Json.Bool Clock.monotonic);
      ("metrics", Metrics.snapshot ());
      ("spans", Util.Json.List (List.map Span.to_json (Span.roots ())));
    ]

let text () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "metrics\n-------\n";
  Buffer.add_string buf (Metrics.text_report ());
  (match Span.roots () with
  | [] -> ()
  | roots ->
      Buffer.add_string buf "\nspans\n-----\n";
      List.iter (fun r -> Buffer.add_string buf (Span.tree_to_string r)) roots);
  Buffer.contents buf

let write path = Util.Json.write_file path (snapshot ())

let reset () =
  Metrics.reset ();
  Span.reset ()
