let schema = "fannet.obs/1"

(* Parallel-pool metrics, fed by the probe installed in [enable]. *)
let h_chunk = Metrics.histogram "parallel.chunk_s"

let g_imbalance = Metrics.gauge "parallel.imbalance"

let c_batches = Metrics.counter "parallel.batches"

let parallel_probe =
  {
    Util.Parallel.now_s = Clock.now_s;
    record =
      (fun ~chunk_seconds ->
        Metrics.incr c_batches;
        Array.iter (Metrics.observe h_chunk) chunk_seconds;
        let n = Array.length chunk_seconds in
        if n > 0 then begin
          let total = Array.fold_left ( +. ) 0. chunk_seconds in
          let mean = total /. float_of_int n in
          let slowest = Array.fold_left Float.max chunk_seconds.(0) chunk_seconds in
          (* Slowest chunk over the mean: 1.0 is a perfectly balanced
             batch; the pool's wall time is bounded by the slowest chunk. *)
          if mean > 0. then Metrics.set_gauge g_imbalance (slowest /. mean)
        end);
  }

let enable () =
  Metrics.set_enabled true;
  Util.Parallel.set_probe (Some parallel_probe)

let disable () =
  Util.Parallel.set_probe None;
  Metrics.set_enabled false

let snapshot () =
  Util.Json.Obj
    [
      ("schema", Util.Json.String schema);
      ("monotonic_clock", Util.Json.Bool Clock.monotonic);
      ("metrics", Metrics.snapshot ());
      ("spans", Util.Json.List (List.map Span.to_json (Span.roots ())));
    ]

let text () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "metrics\n-------\n";
  Buffer.add_string buf (Metrics.text_report ());
  (match Span.roots () with
  | [] -> ()
  | roots ->
      Buffer.add_string buf "\nspans\n-----\n";
      List.iter (fun r -> Buffer.add_string buf (Span.tree_to_string r)) roots);
  Buffer.contents buf

let write path = Util.Json.write_file path (snapshot ())

let reset () =
  Metrics.reset ();
  Span.reset ()
