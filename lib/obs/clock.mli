(** Monotonic time source for all instrumentation and benchmarks.

    Readings come from the CLOCK_MONOTONIC-backed [Monotonic_clock] stubs
    (bechamel), so NTP steps and wall-clock adjustments cannot skew
    measured durations. On platforms where the monotonic clock is
    unavailable (the stub then reads 0) the module falls back to
    [Unix.gettimeofday], detected once at startup. *)

val monotonic : bool
(** Whether the real monotonic clock backs {!now_ns} (false only on the
    gettimeofday fallback path). *)

val now_ns : unit -> int64
(** Current reading in nanoseconds. Only differences are meaningful; the
    epoch is unspecified. Non-decreasing when {!monotonic} holds. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val elapsed_s : since:int64 -> float
(** Seconds elapsed since an earlier {!now_ns} reading. *)

val ns_to_s : int64 -> float
(** Convert a nanosecond duration to seconds. *)
