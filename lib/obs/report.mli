(** Observability top level: turn recording on/off and export everything.

    [enable] flips the metrics/span registries on and installs the
    {!Util.Parallel} probe (per-chunk wall time and imbalance feed the
    ["parallel.chunk_s"] histogram and ["parallel.imbalance"] gauge).
    [disable] reverses both, leaving recorded values readable. *)

val enable : unit -> unit

val disable : unit -> unit

val schema : string
(** ["fannet.obs/1"], the [schema] field of {!snapshot}. *)

val snapshot : unit -> Util.Json.t
(** [{"schema", "monotonic_clock", "metrics", "spans"}] — the complete
    observability state: {!Metrics.snapshot} plus one JSON tree per
    completed root span. *)

val text : unit -> string
(** Human-readable report: the metrics table followed by every span
    tree. *)

val write : string -> unit
(** Pretty-print {!snapshot} to a file. *)

val reset : unit -> unit
(** Clear all metric values and recorded spans. *)
