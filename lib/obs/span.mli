(** Scoped monotonic timers forming a per-domain trace tree.

    [with_ name f] times [f] on the monotonic clock and records the span
    as a child of the innermost enclosing [with_] {e on the same domain}
    (tracked in domain-local storage); spans with no enclosing parent
    become roots. Worker domains therefore contribute their own root
    spans — the pool does not try to stitch cross-domain parentage.

    Like the metrics registry, span recording is off until
    [Metrics.set_enabled true]; when disabled [with_ name f] is exactly
    [f ()] after one branch. *)

type t = {
  name : string;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable rev_children : t list;  (** most recent first *)
}

val with_ : string -> (unit -> 'a) -> 'a
(** Exception-safe: the span is closed and recorded even if [f] raises. *)

val children : t -> t list
(** In start order. *)

val duration_s : t -> float

val roots : unit -> t list
(** Completed root spans, in completion order (across all domains). *)

val reset : unit -> unit
(** Drop recorded roots. Must not be called while spans are open. *)

val to_json : t -> Util.Json.t
(** [{"name": ..., "s": seconds, "children": [...]}]. *)

val tree_to_string : t -> string
(** Indented rendering of one span tree, durations in engineering units. *)
