(** Process-wide metrics registry: named counters, gauges and fixed-bucket
    histograms, safe to record from any domain.

    The registry is {e disabled by default}: every record operation starts
    with a single atomic-load-and-branch and does nothing else, so
    instrumented hot paths cost one predictable branch when observability
    is off (the contract bench E17 measures). Metric handles are created
    eagerly at module-initialisation time by the instrumented libraries;
    creation is cheap and independent of the enabled flag.

    Counters are sharded: each domain increments its own atomic cell
    (selected by domain id) and {!counter_value}/{!snapshot} merge the
    shards on read, so concurrent hot-path increments never contend on one
    cache line. Histogram shards are tiny mutex-protected records —
    uncontended locks in the common case, correct under domain-id
    collisions. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Enable or disable recording. Values recorded while enabled are kept
    until {!reset}. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Get or create the counter registered under this name. Raises
    [Invalid_argument] if the name is registered as another metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
(** Sum over all shards (reads are atomic per shard, merged on read). *)

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
(** Last write wins. *)

val gauge_value : gauge -> float
(** [nan] until first set (and after {!reset}). *)

(** {1 Histograms} *)

type histogram

val default_buckets : float array
(** Exponential latency-style bucket upper bounds (seconds):
    1µs … ~100s. *)

val histogram : ?buckets:float array -> string -> histogram
(** Get or create. [buckets] are strictly increasing upper bounds; values
    above the last bound are counted in a dedicated overflow slot. On an
    existing name the buckets argument is ignored. NaN observations are
    counted in a dedicated slot, never in a value bucket. *)

type histogram_view = {
  buckets : float array;   (** upper bounds, as registered *)
  counts : int array;      (** per-bucket counts (same length) *)
  overflow : int;          (** observations above the last bound *)
  nan_count : int;         (** NaN observations *)
  count : int;             (** all observations, including NaN *)
  sum : float;             (** sum of non-NaN observations *)
  vmin : float;            (** min non-NaN observation; [nan] if none *)
  vmax : float;            (** max non-NaN observation; [nan] if none *)
}

val observe : histogram -> float -> unit
val histogram_view : histogram -> histogram_view
(** Merged over all shards. *)

(** {1 Registry} *)

val reset : unit -> unit
(** Zero every registered metric (handles stay valid). *)

val snapshot : unit -> Util.Json.t
(** JSON object [{"counters": {...}, "gauges": {...}, "histograms":
    {...}}], keys sorted by name — deterministic for a quiesced
    registry. Unset gauges render as [null]. *)

val text_report : unit -> string
(** Human-readable rendering of {!snapshot} (one metric per line;
    histograms show count/mean/min/max). *)
