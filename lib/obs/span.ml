type t = {
  name : string;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable rev_children : t list;
}

(* Innermost open span of the current domain. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let roots_lock = Mutex.create ()

let rev_roots : t list ref = ref []

let add_root span =
  Mutex.lock roots_lock;
  rev_roots := span :: !rev_roots;
  Mutex.unlock roots_lock

let with_ name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let parent = Domain.DLS.get current in
    let span = { name; start_ns = Clock.now_ns (); stop_ns = 0L; rev_children = [] } in
    Domain.DLS.set current (Some span);
    Fun.protect
      ~finally:(fun () ->
        span.stop_ns <- Clock.now_ns ();
        Domain.DLS.set current parent;
        match parent with
        | Some p -> p.rev_children <- span :: p.rev_children
        | None -> add_root span)
      f
  end

let children span = List.rev span.rev_children

let duration_s span = Clock.ns_to_s (Int64.sub span.stop_ns span.start_ns)

let roots () =
  Mutex.lock roots_lock;
  let r = List.rev !rev_roots in
  Mutex.unlock roots_lock;
  r

let reset () =
  Mutex.lock roots_lock;
  rev_roots := [];
  Mutex.unlock roots_lock

let rec to_json span =
  Util.Json.Obj
    [
      ("name", Util.Json.String span.name);
      ("s", Util.Json.Float (duration_s span));
      ("children", Util.Json.List (List.map to_json (children span)));
    ]

let pretty_s s =
  if s >= 1. then Printf.sprintf "%.2f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else Printf.sprintf "%.0f us" (s *. 1e6)

let tree_to_string span =
  let buf = Buffer.create 256 in
  let rec go depth span =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  %s\n" (String.make (2 * depth) ' ') span.name
         (pretty_s (duration_s span)));
    List.iter (go (depth + 1)) (children span)
  in
  go 0 span;
  Buffer.contents buf
