(* The bechamel stub reads CLOCK_MONOTONIC and returns 0 when the
   platform has no such clock; two zero readings in a row mean the stub
   is dead (a live clock cannot report the same 0 ns twice across a
   syscall), so detect that once and fall back to wall time. *)
let monotonic =
  Monotonic_clock.now () <> 0L || Monotonic_clock.now () <> 0L

let wall_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let now_ns () = if monotonic then Monotonic_clock.now () else wall_ns ()

let ns_to_s ns = Int64.to_float ns /. 1e9

let now_s () = ns_to_s (now_ns ())

let elapsed_s ~since = ns_to_s (Int64.sub (now_ns ()) since)
