let on = Atomic.make false

let enabled () = Atomic.get on

let set_enabled b = Atomic.set on b

(* Shard count: power of two so shard selection is a mask. Two live
   domains whose ids collide modulo [n_shards] share a shard, which is
   still correct — counter cells are atomic and histogram shards carry a
   mutex — just marginally more contended. *)
let n_shards = 16

let shard_id () = (Domain.self () :> int) land (n_shards - 1)

type counter = { c_name : string; cells : int Atomic.t array }

type gauge = { g_name : string; value : float Atomic.t }

(* One histogram shard: a plain record behind a mutex. The lock is
   per-shard and almost always uncontended (each domain hashes to its own
   shard), so [observe] stays cheap without per-bucket atomics. *)
type hshard = {
  lock : Mutex.t;
  mutable counts : int array;
  mutable overflow : int;
  mutable nan_count : int;
  mutable hcount : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type histogram = { h_name : string; buckets : float array; shards : hshard array }

type histogram_view = {
  buckets : float array;
  counts : int array;
  overflow : int;
  nan_count : int;
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* Registry: creation and snapshot are rare, so one mutex suffices. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let get_or_create name ~kind ~make ~cast =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match cast m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Obs.Metrics: %S is already a different metric kind (wanted %s)"
                   name kind))
      | None ->
          let v = make () in
          Hashtbl.add registry name v;
          match cast v with Some v -> v | None -> assert false)

let counter name =
  get_or_create name ~kind:"counter"
    ~make:(fun () ->
      Counter { c_name = name; cells = Array.init n_shards (fun _ -> Atomic.make 0) })
    ~cast:(function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let add c n =
  if Atomic.get on then
    ignore (Atomic.fetch_and_add c.cells.(shard_id ()) n)

let incr c = add c 1

let counter_value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge name =
  get_or_create name ~kind:"gauge"
    ~make:(fun () -> Gauge { g_name = name; value = Atomic.make Float.nan })
    ~cast:(function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let set_gauge g v = if Atomic.get on then Atomic.set g.value v

let gauge_value g = Atomic.get g.value

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.5; 1.; 5.; 30.; 120. |]

let fresh_hshard nbuckets =
  {
    lock = Mutex.create ();
    counts = Array.make nbuckets 0;
    overflow = 0;
    nan_count = 0;
    hcount = 0;
    sum = 0.;
    vmin = Float.nan;
    vmax = Float.nan;
  }

let histogram ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Obs.Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if Float.is_nan b || (i > 0 && b <= buckets.(i - 1)) then
        invalid_arg "Obs.Metrics.histogram: buckets must be strictly increasing")
    buckets;
  get_or_create name ~kind:"histogram"
    ~make:(fun () ->
      Histogram
        {
          h_name = name;
          buckets = Array.copy buckets;
          shards = Array.init n_shards (fun _ -> fresh_hshard (Array.length buckets));
        })
    ~cast:(function Histogram h -> Some h | Counter _ | Gauge _ -> None)

let observe h x =
  if Atomic.get on then begin
    let sh = h.shards.(shard_id ()) in
    Mutex.lock sh.lock;
    sh.hcount <- sh.hcount + 1;
    if Float.is_nan x then sh.nan_count <- sh.nan_count + 1
    else begin
      sh.sum <- sh.sum +. x;
      if Float.is_nan sh.vmin || x < sh.vmin then sh.vmin <- x;
      if Float.is_nan sh.vmax || x > sh.vmax then sh.vmax <- x;
      (* Linear scan: bucket arrays are small (~a dozen bounds) and the
         scan beats binary search at that size. *)
      let n = Array.length h.buckets in
      let rec place i =
        if i >= n then sh.overflow <- sh.overflow + 1
        else if x <= h.buckets.(i) then sh.counts.(i) <- sh.counts.(i) + 1
        else place (i + 1)
      in
      place 0
    end;
    Mutex.unlock sh.lock
  end

let histogram_view (h : histogram) =
  let nb = Array.length h.buckets in
  let acc =
    {
      buckets = Array.copy h.buckets;
      counts = Array.make nb 0;
      overflow = 0;
      nan_count = 0;
      count = 0;
      sum = 0.;
      vmin = Float.nan;
      vmax = Float.nan;
    }
  in
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let r =
        {
          acc with
          counts = Array.mapi (fun i c -> c + sh.counts.(i)) acc.counts;
          overflow = acc.overflow + sh.overflow;
          nan_count = acc.nan_count + sh.nan_count;
          count = acc.count + sh.hcount;
          sum = acc.sum +. sh.sum;
          vmin =
            (if Float.is_nan acc.vmin then sh.vmin
             else if Float.is_nan sh.vmin then acc.vmin
             else Float.min acc.vmin sh.vmin);
          vmax =
            (if Float.is_nan acc.vmax then sh.vmax
             else if Float.is_nan sh.vmax then acc.vmax
             else Float.max acc.vmax sh.vmax);
        }
      in
      Mutex.unlock sh.lock;
      r)
    acc h.shards

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells
          | Gauge g -> Atomic.set g.value Float.nan
          | Histogram h ->
              Array.iter
                (fun sh ->
                  Mutex.lock sh.lock;
                  Array.fill sh.counts 0 (Array.length sh.counts) 0;
                  sh.overflow <- 0;
                  sh.nan_count <- 0;
                  sh.hcount <- 0;
                  sh.sum <- 0.;
                  sh.vmin <- Float.nan;
                  sh.vmax <- Float.nan;
                  Mutex.unlock sh.lock)
                h.shards)
        registry)

let sorted_metrics () =
  with_registry (fun () ->
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let float_or_null f = if Float.is_nan f then Util.Json.Null else Util.Json.Float f

let snapshot () =
  let metrics = sorted_metrics () in
  let pick f = List.filter_map f metrics in
  Util.Json.Obj
    [
      ( "counters",
        Util.Json.Obj
          (pick (function
            | name, Counter c -> Some (name, Util.Json.Int (counter_value c))
            | _ -> None)) );
      ( "gauges",
        Util.Json.Obj
          (pick (function
            | name, Gauge g -> Some (name, float_or_null (gauge_value g))
            | _ -> None)) );
      ( "histograms",
        Util.Json.Obj
          (pick (function
            | name, Histogram h ->
                let v = histogram_view h in
                Some
                  ( name,
                    Util.Json.Obj
                      [
                        ( "buckets",
                          Util.Json.List
                            (Array.to_list (Array.map (fun b -> Util.Json.Float b) v.buckets))
                        );
                        ( "counts",
                          Util.Json.List
                            (Array.to_list (Array.map (fun c -> Util.Json.Int c) v.counts)) );
                        ("overflow", Util.Json.Int v.overflow);
                        ("nan", Util.Json.Int v.nan_count);
                        ("count", Util.Json.Int v.count);
                        ("sum", Util.Json.Float v.sum);
                        ("min", float_or_null v.vmin);
                        ("max", float_or_null v.vmax);
                      ] )
            | _ -> None)) );
    ]

let text_report () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name (counter_value c))
      | Gauge g ->
          let v = gauge_value g in
          Buffer.add_string buf
            (Printf.sprintf "%-40s %s\n" name
               (if Float.is_nan v then "unset" else Printf.sprintf "%g" v))
      | Histogram h ->
          let v = histogram_view h in
          if v.count = 0 then
            Buffer.add_string buf (Printf.sprintf "%-40s n=0\n" name)
          else
            let mean =
              if v.count - v.nan_count > 0 then
                v.sum /. float_of_int (v.count - v.nan_count)
              else Float.nan
            in
            Buffer.add_string buf
              (Printf.sprintf "%-40s n=%d mean=%g min=%g max=%g%s\n" name v.count mean
                 v.vmin v.vmax
                 (if v.nan_count > 0 then Printf.sprintf " nan=%d" v.nan_count else "")))
    (sorted_metrics ());
  Buffer.contents buf
